"""RS004 — typed exceptions, not bare ``assert``, for input validation."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.model import FileContext, Finding
from repro.staticcheck.rules.base import Rule

__all__ = ["ExceptionPolicyRule"]


class ExceptionPolicyRule(Rule):
    """Every ``assert`` in ``src/`` must be justified.

    PR 3's policy: malformed *input* raises a typed
    :mod:`repro.exceptions` error (``InvalidInstanceError`` /
    ``InfeasibleInstanceError``) that callers, the batch engine, and
    the auditor can classify — a bare ``assert`` instead vanishes under
    ``python -O`` and surfaces as an undifferentiated ``crash`` row.
    The rule cannot mechanically tell validation from invariant, so it
    flags every ``assert`` statement; genuine *internal* invariants
    (states unreachable from any input when the implementation is
    correct) stay as asserts with a waiver naming the invariant —
    deliberately kept ``AssertionError`` so the certification auditor
    still classifies a tripped one as ``crash``, never as a declared
    failure mode.
    """

    rule_id = "RS004"
    title = "exception-policy"
    rationale = (
        "input validation must raise typed repro.exceptions errors "
        "(asserts vanish under -O and audit as undiagnosed crashes); "
        "internal invariants keep asserts, waivered with the invariant"
    )
    anchor = "PR 3 (exception policy; unrelated_lower_bound conversion)"
    fix_hint = (
        "raise InvalidInstanceError/InfeasibleInstanceError for "
        "conditions reachable from caller data; for true internal "
        "invariants add `# repro: allow[RS004] reason=<the invariant>`"
    )
    scope = ()  # the policy covers all of src/

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield self.finding(
                    ctx,
                    node,
                    "bare assert: raise a typed repro.exceptions error for "
                    "input validation, or waive an internal invariant with "
                    "a reason",
                )
