"""RS001 — exact-rational purity of the certification path."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.model import FileContext, Finding
from repro.staticcheck.rules.base import Rule

__all__ = ["ExactPurityRule"]

#: ``math`` functions that are exact on int/Fraction inputs and therefore
#: allowed even inside the exact-arithmetic scope
_EXACT_MATH = frozenset(
    {
        "gcd",
        "lcm",
        "isqrt",
        "comb",
        "perm",
        "factorial",
        "floor",
        "ceil",
        "trunc",
    }
)


class ExactPurityRule(Rule):
    """No float arithmetic where the repo promises exact rationals.

    The certification subsystem's entire value is that ratios, bounds,
    and makespans are *proven* over :class:`fractions.Fraction` — a
    single float creeping in (PR 3's auditor caught a real solver bug
    born of exactly such a unit/float mixup) silently converts a proof
    into an approximation.  Inside the scoped files this rule flags
    float literals, ``float(...)`` conversions, and float-domain
    ``math.*`` operations (integer-exact helpers like ``math.gcd`` /
    ``math.isqrt`` stay allowed).
    """

    rule_id = "RS001"
    title = "exact-purity"
    rationale = (
        "certificates, bounds, and exact solvers must compute over "
        "Fraction only; a float in this path turns a proof into an "
        "approximation"
    )
    anchor = "PR 3 (repro.certify; the dual-approx speed-unit bug)"
    fix_hint = (
        "compute with fractions.Fraction (utils.rationals.as_fraction); "
        "if a float is genuinely reporting-only (never compared or "
        "certified), waive the line with a reason saying so"
    )
    scope = (
        "repro/certify/",
        "repro/scheduling/bounds.py",
        "repro/scheduling/brute_force.py",
        "repro/scheduling/dp_unrelated.py",
        "repro/core/q2_unit_exact.py",
        "repro/core/complete_multipartite.py",
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Constant) and isinstance(
                node.value, (float, complex)
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"float literal {node.value!r} in the exact-arithmetic "
                    "path (use Fraction)",
                )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "float":
                    yield self.finding(
                        ctx,
                        node,
                        "float(...) conversion in the exact-arithmetic path "
                        "(keep the Fraction, or waive a reporting-only use)",
                    )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "math"
                    and node.attr not in _EXACT_MATH
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"math.{node.attr} is float-domain arithmetic; the "
                        "certification path must stay exact (squared/rational "
                        "forms instead of radicals and logs)",
                    )
