"""Rule registry for :mod:`repro.staticcheck`.

Rules are ordered by id.  Third-party/in-repo extension rules register
with :func:`register_rule`; the driver asks for instances via
:func:`get_rules`.
"""

from __future__ import annotations

from repro.staticcheck.rules.async_safety import AsyncSafetyRule
from repro.staticcheck.rules.base import Rule
from repro.staticcheck.rules.exact_purity import ExactPurityRule
from repro.staticcheck.rules.exception_policy import ExceptionPolicyRule
from repro.staticcheck.rules.import_guards import ImportGuardsRule
from repro.staticcheck.rules.registry_contract import RegistryContractRule

__all__ = [
    "ALL_RULES",
    "LINT_INTEGRITY",
    "Rule",
    "get_rules",
    "register_rule",
]

#: pseudo rule id carried by findings *about the lint run itself*:
#: syntax errors, waivers without a reason, waivers naming unknown rule
#: ids, and waivers that matched nothing.  Not a Rule subclass — it has
#: no check() — but it is a valid id in ``--rules`` and in waivers.
LINT_INTEGRITY = "RS000"

#: ordered registry: rule id -> Rule subclass
ALL_RULES: dict[str, type[Rule]] = {
    ExactPurityRule.rule_id: ExactPurityRule,
    RegistryContractRule.rule_id: RegistryContractRule,
    AsyncSafetyRule.rule_id: AsyncSafetyRule,
    ExceptionPolicyRule.rule_id: ExceptionPolicyRule,
    ImportGuardsRule.rule_id: ImportGuardsRule,
}


def register_rule(rule_cls: type[Rule]) -> type[Rule]:
    """Register an extension rule (usable as a class decorator).

    Raises ``ValueError`` on id collisions so an extension cannot
    silently shadow a production rule.
    """
    rule_id = rule_cls.rule_id
    if not rule_id or rule_id == LINT_INTEGRITY:
        raise ValueError(f"invalid rule id {rule_id!r}")
    existing = ALL_RULES.get(rule_id)
    if existing is not None and existing is not rule_cls:
        raise ValueError(
            f"rule id {rule_id!r} already registered by {existing.__name__}"
        )
    ALL_RULES[rule_id] = rule_cls
    return rule_cls


def get_rules(ids: tuple[str, ...] | None = None) -> list[Rule]:
    """Instantiate the selected rules (all of them when ``ids`` is None).

    ``RS000`` is accepted and skipped — the driver always emits
    lint-integrity findings.  Unknown ids raise ``ValueError`` listing
    what *is* available, so a typo in ``--rules`` fails loudly.
    """
    if ids is None:
        return [cls() for cls in ALL_RULES.values()]
    selected: list[Rule] = []
    for rule_id in ids:
        if rule_id == LINT_INTEGRITY:
            continue
        cls = ALL_RULES.get(rule_id)
        if cls is None:
            known = ", ".join([LINT_INTEGRITY, *ALL_RULES])
            raise ValueError(f"unknown rule id {rule_id!r} (known: {known})")
        selected.append(cls())
    return selected
