"""The ``Rule`` contract every invariant check implements."""

from __future__ import annotations

import abc
from fnmatch import fnmatch
from typing import ClassVar, Iterator

from repro.staticcheck.model import FileContext, Finding

__all__ = ["Rule"]


class Rule(abc.ABC):
    """One machine-checked repo contract.

    Subclasses declare *what* they enforce (``rule_id``, ``title``),
    *why* it is a contract of this codebase (``rationale``, ``anchor``
    — the PR that established it), *where* it applies (``scope``), and
    *how to comply* (``fix_hint``, surfaced by ``repro lint
    --fix-hints``).  :meth:`check` yields findings; it never applies
    waivers itself — the driver owns waiver semantics so every rule
    gets them identically.

    ``scope`` entries match against :attr:`FileContext.module` (the
    package-relative posix path): an entry ending in ``/`` is a prefix
    (a whole package), anything else is an exact path or an
    ``fnmatch`` glob.  An empty scope means every linted file.
    """

    rule_id: ClassVar[str]
    title: ClassVar[str]
    rationale: ClassVar[str]
    anchor: ClassVar[str]
    fix_hint: ClassVar[str]
    scope: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (scope matching)."""
        if not self.scope:
            return True
        return any(
            ctx.module.startswith(entry)
            if entry.endswith("/")
            else (ctx.module == entry or fnmatch(ctx.module, entry))
            for entry in self.scope
        )

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield every violation of this rule in one parsed file."""

    def finding(self, ctx: FileContext, node: object, message: str) -> Finding:
        """Shorthand for a finding of this rule at ``node``."""
        return ctx.finding(self.rule_id, node, message)  # type: ignore[arg-type]

    def describe(self) -> dict[str, object]:
        """JSON-safe rule-catalog entry (``repro lint --list-rules``)."""
        return {
            "id": self.rule_id,
            "title": self.title,
            "rationale": self.rationale,
            "anchor": self.anchor,
            "fix_hint": self.fix_hint,
            "scope": list(self.scope) or ["(every linted file)"],
        }
