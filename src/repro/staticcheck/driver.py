"""The per-file lint driver: parse once, run every applicable rule.

Waiver semantics live here, not in rules, so every rule gets identical
treatment: a finding whose line is covered by a ``# repro:
allow[<rule>] reason=...`` waiver is kept in the report (marked
``waived``) but does not fail the run.  The driver also emits
``RS000`` *lint-integrity* findings for problems with the lint run
itself: unparsable files, waivers with no ``reason=``, waivers naming
unknown rule ids, and waivers that suppressed nothing.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.staticcheck.model import FileContext, Finding
from repro.staticcheck.rules import ALL_RULES, LINT_INTEGRITY, get_rules
from repro.staticcheck.rules.base import Rule
from repro.staticcheck.waivers import Waiver, parse_waivers

__all__ = [
    "LintReport",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_path_for",
]


@dataclass
class LintReport:
    """Everything one lint run produced.

    ``findings`` keeps waived findings too (auditable waiver usage);
    :meth:`active` filters to the ones that fail the gate.  Reports
    merge with ``+=`` so the multi-file driver can accumulate per-file
    results.
    """

    findings: list[Finding] = field(default_factory=list)
    waivers: list[Waiver] = field(default_factory=list)
    files_scanned: int = 0
    rules: tuple[str, ...] = ()

    def active(self) -> list[Finding]:
        """Findings that fail the run (not waived)."""
        return [f for f in self.findings if not f.waived]

    def waived(self) -> list[Finding]:
        """Findings suppressed by a waiver (kept for auditability)."""
        return [f for f in self.findings if f.waived]

    @property
    def ok(self) -> bool:
        """Whether the gate passes: zero active findings."""
        return not self.active()

    def extend(self, other: "LintReport") -> None:
        """Merge another (per-file) report into this one."""
        self.findings.extend(other.findings)
        self.waivers.extend(other.waivers)
        self.files_scanned += other.files_scanned


def module_path_for(path: Path) -> str:
    """Package-relative posix path for ``path``.

    Walks the ``__init__.py`` chain upward: the module path starts at
    the outermost ancestor directory that is still a package.  For
    ``<anything>/src/repro/certify/auditor.py`` that yields
    ``"repro/certify/auditor.py"`` no matter where the lint run was
    rooted, which is what rule scopes match against.  Files outside any
    package (scripts, tests run standalone) fall back to their bare
    file name.
    """
    path = path.resolve()
    top = path.parent
    while (top.parent / "__init__.py").is_file():
        top = top.parent
    if not (top / "__init__.py").is_file():
        return path.name
    return path.relative_to(top.parent).as_posix()


def _integrity(
    path: Path, module: str, line: int, col: int, message: str
) -> Finding:
    return Finding(
        rule_id=LINT_INTEGRITY,
        path=str(path),
        module=module,
        line=line,
        col=col,
        message=message,
    )


def lint_source(
    source: str,
    *,
    module: str,
    path: Path | str | None = None,
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Lint one in-memory source blob as if it lived at ``module``.

    The workhorse behind :func:`lint_file` and the unit-test surface:
    fixtures pass a synthetic ``module`` (e.g.
    ``"repro/certify/fake.py"``) to land inside any rule's scope.
    """
    rule_objs = list(rules) if rules is not None else get_rules()
    selected_ids = {r.rule_id for r in rule_objs} | {LINT_INTEGRITY}
    fpath = Path(path) if path is not None else Path(module)
    report = LintReport(
        files_scanned=1, rules=tuple(sorted(selected_ids))
    )

    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", None) or 1
        col = getattr(exc, "offset", None) or 0
        report.findings.append(
            _integrity(
                fpath, module, line, col, f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}"
            )
        )
        return report

    ctx = FileContext(path=fpath, module=module, source=source, tree=tree)
    waivers = parse_waivers(source)
    report.waivers.extend(waivers)

    # waiver hygiene first: missing reasons and unknown rule ids are
    # findings in their own right (and such waivers never suppress)
    known_ids = set(ALL_RULES) | {LINT_INTEGRITY}
    for waiver in waivers:
        if waiver.reason is None:
            report.findings.append(
                _integrity(
                    fpath,
                    module,
                    waiver.comment_line,
                    0,
                    "waiver without reason=...; every waiver must state why "
                    "the contract does not apply here",
                )
            )
        for rule_id in waiver.rule_ids:
            if rule_id not in known_ids:
                report.findings.append(
                    _integrity(
                        fpath,
                        module,
                        waiver.comment_line,
                        0,
                        f"waiver names unknown rule id {rule_id!r}",
                    )
                )

    for rule in rule_objs:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            for waiver in waivers:
                if waiver.covers(finding.rule_id, finding.line):
                    waiver.used = True
                    waiver.used_by.append(
                        f"{finding.rule_id}@{finding.line}"
                    )
                    finding = dataclasses.replace(finding, waived=True)
                    break
            report.findings.append(finding)

    # unused waivers: only for waivers naming currently-selected rules,
    # so `--rules RS001` does not flag every RS004 waiver as stale
    for waiver in waivers:
        if waiver.used or waiver.reason is None:
            continue
        if not any(rid in selected_ids for rid in waiver.rule_ids):
            continue
        report.findings.append(
            _integrity(
                fpath,
                module,
                waiver.comment_line,
                0,
                "unused waiver for "
                f"{','.join(waiver.rule_ids)}: no finding on line "
                f"{waiver.target_line} — fix succeeded, remove the waiver",
            )
        )

    return report


def lint_file(
    path: Path | str, *, rules: Sequence[Rule] | None = None
) -> LintReport:
    """Lint one file on disk (module path derived from its package)."""
    fpath = Path(path)
    try:
        source = fpath.read_text(encoding="utf-8")
    except OSError as exc:
        report = LintReport(files_scanned=1)
        report.findings.append(
            _integrity(fpath, fpath.name, 1, 0, f"unreadable file: {exc}")
        )
        return report
    return lint_source(
        source, module=module_path_for(fpath), path=fpath, rules=rules
    )


def lint_paths(
    paths: Iterable[Path | str],
    *,
    rules: Sequence[Rule] | None = None,
) -> LintReport:
    """Lint files and/or directory trees (``*.py``, sorted, deduped)."""
    rule_objs = list(rules) if rules is not None else get_rules()
    files: list[Path] = []
    seen: set[Path] = set()
    for entry in paths:
        p = Path(entry)
        candidates = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in candidates:
            r = f.resolve()
            if r not in seen:
                seen.add(r)
                files.append(f)
    report = LintReport(
        rules=tuple(sorted({r.rule_id for r in rule_objs} | {LINT_INTEGRITY}))
    )
    for f in files:
        report.extend(lint_file(f, rules=rule_objs))
    return report
