"""The data model every lint rule consumes and produces."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

__all__ = ["FileContext", "Finding"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``module`` is the package-relative posix path
    (``"repro/certify/auditor.py"``) rule scopes match against —
    stable across checkouts, unlike ``path``.  ``waived`` findings are
    kept in reports (so waiver usage is auditable) but do not fail the
    lint run.
    """

    rule_id: str
    path: str
    module: str
    line: int
    col: int
    message: str
    waived: bool = False

    def location(self) -> str:
        """``path:line:col`` — the clickable form."""
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe record (the ``repro/lint/v1`` report streams these)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "waived": self.waived,
        }


@dataclass
class FileContext:
    """One parsed source file, handed to every applicable rule.

    The tree is parsed once per file; rules never re-parse.  ``module``
    is derived by walking the ``__init__.py`` package chain upward from
    the file (:func:`repro.staticcheck.driver.module_path_for`), so the
    same rule scopes work no matter which directory the lint run was
    rooted at — and tests can inject a synthetic module path to place a
    fixture snippet inside any rule's scope.
    """

    path: Path
    module: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def finding(
        self, rule_id: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            rule_id=rule_id,
            path=str(self.path),
            module=self.module,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
