"""Render a :class:`~repro.staticcheck.driver.LintReport`.

Two formats: human-readable text (grouped by file, one
``path:line:col RSxxx message`` row per finding, waived findings shown
dimly-by-prefix) and the ``repro/lint/v1`` JSON schema consumed by the
CI artifact upload.
"""

from __future__ import annotations

import json
from typing import Any

from repro.staticcheck.driver import LintReport
from repro.staticcheck.rules import get_rules

__all__ = ["LINT_FORMAT", "render_json", "render_text"]

#: schema tag in every JSON report, bumped on breaking changes
LINT_FORMAT = "repro/lint/v1"


def render_json(report: LintReport) -> str:
    """The ``repro/lint/v1`` report: verdict, findings, waiver audit."""
    payload: dict[str, Any] = {
        "format": LINT_FORMAT,
        "ok": report.ok,
        "files_scanned": report.files_scanned,
        "rules": list(report.rules),
        "counts": {
            "active": len(report.active()),
            "waived": len(report.waived()),
        },
        "findings": [f.to_dict() for f in report.findings],
        "waivers": [w.to_dict() for w in report.waivers],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_text(report: LintReport, *, fix_hints: bool = False) -> str:
    """Human-readable report; ``fix_hints`` appends each rule's remedy."""
    lines: list[str] = []
    active = report.active()
    hints: dict[str, str] = {}
    if fix_hints:
        hints = {r.rule_id: r.fix_hint for r in get_rules()}

    by_path: dict[str, list[Any]] = {}
    for finding in report.findings:
        by_path.setdefault(finding.path, []).append(finding)

    for path in sorted(by_path):
        shown = [
            f for f in sorted(by_path[path], key=lambda f: (f.line, f.col))
        ]
        if not shown:
            continue
        lines.append(path)
        for f in shown:
            marker = "waived " if f.waived else ""
            lines.append(
                f"  {f.line}:{f.col} {marker}{f.rule_id} {f.message}"
            )
            hint = hints.get(f.rule_id)
            if hint and not f.waived:
                lines.append(f"        hint: {hint}")
        lines.append("")

    waived = report.waived()
    summary = (
        f"{len(active)} finding(s) in {report.files_scanned} file(s)"
        + (f", {len(waived)} waived" if waived else "")
    )
    if report.ok:
        lines.append(f"lint clean: {summary}")
    else:
        lines.append(f"lint FAILED: {summary}")
    return "\n".join(lines)
