"""AST-based invariant linter: the codebase's own contracts, machine-checked.

The reproduction's correctness story rests on invariants that ordinary
linters cannot see: exact-rational arithmetic in the certification path
(PR 3), honest :class:`~repro.engine.registry.Capability` declarations
in the engine registry (PR 5), a never-block event loop in the serving
tier (PR 6), the typed-exception policy for input validation (PR 3),
and import-guard discipline for optional heavy backends (ROADMAP's
CP/ILP item).  ``repro lint`` enforces all of them on every PR.

Architecture
------------
* :mod:`~repro.staticcheck.model` — :class:`Finding` and
  :class:`FileContext`, the data every rule consumes and produces;
* :mod:`~repro.staticcheck.waivers` — ``# repro: allow[RS001]
  reason=...`` waiver comments, with unused-waiver and missing-reason
  detection;
* :mod:`~repro.staticcheck.rules` — the rule registry; each rule is an
  :class:`~repro.staticcheck.rules.base.Rule` subclass with a scope, a
  rationale anchored to the PR that established the contract, and a fix
  hint;
* :mod:`~repro.staticcheck.driver` — the per-file ``ast`` visitor
  driver (:func:`lint_paths` / :func:`lint_file` / :func:`lint_source`);
* :mod:`~repro.staticcheck.reporters` — human-readable and JSON
  (``repro/lint/v1``) output.

Adding a rule is one subclass plus one :func:`register_rule` call; see
``docs/STATIC_ANALYSIS.md``.
"""

from __future__ import annotations

from repro.staticcheck.driver import (
    LintReport,
    lint_file,
    lint_paths,
    lint_source,
    module_path_for,
)
from repro.staticcheck.model import FileContext, Finding
from repro.staticcheck.reporters import (
    LINT_FORMAT,
    render_json,
    render_text,
)
from repro.staticcheck.rules import (
    ALL_RULES,
    get_rules,
    register_rule,
)
from repro.staticcheck.rules.base import Rule
from repro.staticcheck.waivers import WAIVER_PATTERN, Waiver, parse_waivers

__all__ = [
    "ALL_RULES",
    "LINT_FORMAT",
    "FileContext",
    "Finding",
    "LintReport",
    "Rule",
    "Waiver",
    "WAIVER_PATTERN",
    "get_rules",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_path_for",
    "parse_waivers",
    "register_rule",
    "render_json",
    "render_text",
]
