"""Waiver comments: ``# repro: allow[RS001] reason=...``.

A waiver suppresses findings of the named rule(s) on one line:

* trailing form — the waiver sits on the offending line itself::

      assert cfg is not None  # repro: allow[RS004] reason=DP memo invariant

* own-line form — a comment-only line waives the **next** line (for
  statements too long to carry a trailing comment)::

      # repro: allow[RS001] reason=reporting-only ratio, never certified
      ratio = float(makespan / optimal)

Several rules may share one waiver (``allow[RS001,RS004]``).  The
``reason=`` clause is mandatory: a waiver without one never suppresses
anything and is itself reported (the lint gate requires every waiver to
carry a reason).  Waivers that suppress nothing are reported as unused,
so stale waivers cannot silently accumulate after the underlying code
is fixed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["WAIVER_PATTERN", "Waiver", "parse_waivers"]

#: the waiver comment grammar; ``reason=`` runs to the end of the comment
WAIVER_PATTERN = re.compile(
    r"#\s*repro:\s*allow\[(?P<ids>[A-Za-z0-9_,\s]+)\]"
    r"(?:\s+reason=(?P<reason>.*\S))?\s*$"
)


@dataclass
class Waiver:
    """One parsed waiver comment.

    ``target_line`` is the line whose findings it suppresses (the
    comment's own line for trailing waivers, the following line for
    own-line waivers).  ``used`` flips when a finding is suppressed;
    unused waivers are reported by the driver.
    """

    rule_ids: tuple[str, ...]
    reason: str | None
    comment_line: int
    target_line: int
    used: bool = False
    used_by: list[str] = field(default_factory=list)

    def covers(self, rule_id: str, line: int) -> bool:
        """Whether this waiver suppresses ``rule_id`` findings at ``line``."""
        return (
            self.reason is not None
            and rule_id in self.rule_ids
            and line == self.target_line
        )

    def to_dict(self) -> dict:
        """JSON-safe record for the lint report."""
        return {
            "rules": list(self.rule_ids),
            "reason": self.reason,
            "comment_line": self.comment_line,
            "target_line": self.target_line,
            "used": self.used,
            "used_by": list(self.used_by),
        }


def parse_waivers(source: str) -> list[Waiver]:
    """Extract every waiver comment from ``source``.

    Tokenises rather than regex-scanning raw lines so a ``# repro:``
    sequence inside a string literal is never mistaken for a waiver.
    Sources that fail to tokenise yield no waivers — the driver reports
    the parse failure separately, and an unparsable file has no findings
    to waive anyway.
    """
    waivers: list[Waiver] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = WAIVER_PATTERN.search(tok.string)
        if match is None:
            continue
        ids = tuple(
            part.strip() for part in match.group("ids").split(",") if part.strip()
        )
        reason = match.group("reason")
        line = tok.start[0]
        # own-line comments (nothing but whitespace before the hash)
        # waive the next line; trailing comments waive their own line
        own_line = tok.line[: tok.start[1]].strip() == ""
        waivers.append(
            Waiver(
                rule_ids=ids,
                reason=reason,
                comment_line=line,
                target_line=line + 1 if own_line else line,
            )
        )
    return waivers
