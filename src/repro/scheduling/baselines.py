"""Literature baselines the paper compares against or builds upon.

* :func:`bjw_identical_approx` — the Bodlaender–Jansen–Woeginger [3]
  2-approximation for ``P|G = bipartite|Cmax`` with ``m >= 3``: color
  classes get disjoint machine groups sized by class weight, LPT inside
  each group.
* :func:`two_machine_split` — the trivial feasible schedule putting one
  color class per machine on the two fastest machines (the "any bipartite
  instance is feasible on 2 machines" fact used throughout the paper).
* :func:`unconstrained_lpt` — LPT ignoring the incompatibility graph;
  generally *infeasible* but its makespan lower-bounds what any
  graph-respecting schedule could hope for, quantifying the "price of
  incompatibility" in the experiment tables.
"""

from __future__ import annotations

from fractions import Fraction

from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs.coloring import inequitable_two_coloring
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.scheduling.list_scheduling import assign_group_greedy, schedule_job_classes
from repro.scheduling.schedule import Schedule

__all__ = [
    "bjw_identical_approx",
    "two_machine_split",
    "unconstrained_lpt",
    "r_color_split",
]


def bjw_identical_approx(instance: UniformInstance) -> Schedule:
    """[3]-style 2-approximation for ``P|G = bipartite|Cmax``, ``m >= 3``.

    The inequitable coloring splits jobs into two independent classes; the
    machines split into two groups with sizes proportional to class weight
    (at least one machine each); each class is LPT-scheduled in its group.
    """
    if not instance.is_identical:
        raise InvalidInstanceError("bjw_identical_approx requires identical machines")
    if instance.m < 3:
        raise InvalidInstanceError(
            f"the [3] approximation needs m >= 3, got m={instance.m}"
        )
    class1, class2 = inequitable_two_coloring(instance.graph, instance.p)
    if not class2:  # empty graph side: plain LPT on all machines
        return schedule_job_classes(instance, [(class1, list(range(instance.m)))])
    w1 = sum(instance.p[j] for j in class1)
    w2 = sum(instance.p[j] for j in class2)
    m = instance.m
    m1 = max(1, min(m - 1, round(m * w1 / (w1 + w2))))
    group1 = list(range(m1))
    group2 = list(range(m1, m))
    return schedule_job_classes(instance, [(class1, group1), (class2, group2)])


def two_machine_split(instance: UniformInstance) -> Schedule:
    """Feasible two-machine schedule: one color class per fast machine.

    The heavier class (weighted inequitable coloring) goes to ``M_1``.
    Works for any ``m >= 2``; machines ``M_3..M_m`` stay idle.  This is the
    shape of scheduling the paper's Algorithm 1 falls back to when no
    suitable independent set exists.
    """
    if instance.m < 2 and instance.graph.edge_count > 0:
        raise InvalidInstanceError(
            "bipartite instances with edges need at least two machines"
        )
    if instance.m == 1:
        return schedule_job_classes(instance, [(list(range(instance.n)), [0])])
    class1, class2 = inequitable_two_coloring(instance.graph, instance.p)
    assignment = [0] * instance.n
    for j in class2:
        assignment[j] = 1
    return Schedule(instance, assignment)


def r_color_split(instance: UnrelatedInstance) -> Schedule:
    """Feasible unrelated-machine fallback: one color class per machine.

    Tries every ordered pair of distinct machines ``(i1, i2)`` for the
    two color classes (plus single-machine placements when a class is
    empty or the graph is edgeless) and keeps the best, skipping pairs
    with forbidden assignments.  Always feasible when some pair works —
    the ``R`` analogue of :func:`two_machine_split` and the natural
    fallback for ``Rm|G = bipartite|Cmax`` with ``m >= 3``, where
    Theorem 24 rules out any reasonable guarantee.

    Runs in ``O(m^2 + m n)`` (class loads per machine are precomputed).
    """
    n, m = instance.n, instance.m
    if n == 0:
        return Schedule(instance, [])
    class1, class2 = inequitable_two_coloring(instance.graph)
    # load[i][c] = total time of class c on machine i, None if forbidden
    loads: list[list[Fraction | None]] = []
    for i in range(m):
        row: list[Fraction | None] = []
        for cls in (class1, class2):
            total = Fraction(0)
            for j in cls:
                t = instance.times[i][j]
                if t is None:
                    total = None
                    break
                total += t
            row.append(total)
        loads.append(row)

    best: tuple[Fraction, int, int] | None = None
    if not class2 or not class1:
        cls_idx = 0 if class1 else 1
        for i in range(m):
            t = loads[i][cls_idx]
            if t is not None and (best is None or t < best[0]):
                best = (t, i, i)
    else:
        for i1 in range(m):
            if loads[i1][0] is None:
                continue
            for i2 in range(m):
                if i1 == i2 or loads[i2][1] is None:
                    continue
                span = max(loads[i1][0], loads[i2][1])
                if best is None or span < best[0]:
                    best = (span, i1, i2)
    if best is None:
        raise InfeasibleInstanceError(
            "no machine pair can host the two color classes "
            "(forbidden assignments block every split)"
        )
    _, i1, i2 = best
    assignment = [i1] * n
    for j in class2:
        assignment[j] = i2
    return Schedule(instance, assignment)


def unconstrained_lpt(instance: UniformInstance) -> Schedule:
    """LPT on all machines ignoring the graph (``check=False``).

    The returned schedule is usually infeasible; its makespan is a valid
    *comparison point* (it lower-bounds nothing formally, but empirically
    tracks the graph-free optimum within the classical LPT factor).
    """
    placed = assign_group_greedy(instance, list(range(instance.n)), list(range(instance.m)))
    assignment = [placed[j] for j in range(instance.n)]
    return Schedule(instance, assignment, check=False)
