"""Conflict-graph coloring split: schedule by optimal greedy coloring.

The general-family fallback the engine dispatches to when no paper
algorithm applies (non-bipartite conflict graphs, machine-eligibility
masks).  The idea, following Furmańczyk et al.'s block-graph treatment
(arXiv:2207.05868): color the conflict graph, then distribute color
classes — which are independent sets — over the machines.

Coloring runs greedily along a *maximum cardinality search* (MCS) order.
On chordal graphs (every block graph is chordal) the reverse MCS order
is a perfect elimination order, so greedy coloring is an **optimal**
coloring; on complete multipartite graphs greedy is optimal in any
order.  The produced color count is therefore an exact feasibility
certificate on those families: a conflict graph with chromatic number
``k`` needs at least ``k`` machines, whatever the speeds.

Two assignment modes:

* no eligibility masks (uniform, all machines usable by every job):
  whole color classes map to machines, largest total work to the
  fastest machine, then jobs rebalance one at a time onto the emptiest
  compatible machine;
* eligibility masks or unrelated forbidden pairs: per-job greedy in
  coloring order, minimising completion time over machines that allow
  the job and hold none of its neighbours.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro.exceptions import InfeasibleInstanceError
from repro.graphs.conflict import ConflictGraph
from repro.scheduling.instance import SchedulingInstance, UniformInstance
from repro.scheduling.schedule import Schedule

__all__ = [
    "mcs_order",
    "greedy_coloring",
    "conflict_color_split",
]


def mcs_order(graph: ConflictGraph) -> list[int]:
    """Maximum cardinality search order of the vertices.

    Repeatedly picks the vertex with the most already-chosen neighbours
    (ties to the lowest vertex id, so the order is deterministic).  The
    reverse of this order is a perfect elimination order iff the graph
    is chordal — which makes greedy coloring along it optimal there.
    """
    n = graph.n
    weight = [0] * n
    chosen = [False] * n
    order: list[int] = []
    for _ in range(n):
        best = -1
        for v in range(n):
            if not chosen[v] and (best == -1 or weight[v] > weight[best]):
                best = v
        chosen[best] = True
        order.append(best)
        for u in graph.neighbors(best):
            if not chosen[u]:
                weight[u] += 1
    return order


def greedy_coloring(
    graph: ConflictGraph, order: Sequence[int] | None = None
) -> list[int]:
    """Greedy proper coloring along ``order`` (MCS order by default).

    Returns ``color[v]`` per vertex; colors are ``0..k-1``.  Optimal on
    chordal graphs (with the MCS order) and on complete multipartite
    graphs (any order); at most ``max_degree + 1`` colors in general.
    """
    if order is None:
        order = mcs_order(graph)
    color = [-1] * graph.n
    for v in order:
        used = {color[u] for u in graph.neighbors(v) if color[u] != -1}
        c = 0
        while c in used:
            c += 1
        color[v] = c
    return color


def _split_classes_uniform(
    instance: UniformInstance, color: list[int], k: int
) -> Schedule:
    """Color classes onto machines: heaviest class to the fastest machine,
    then per-job rebalancing onto emptier compatible machines."""
    classes: list[list[int]] = [[] for _ in range(k)]
    for j in range(instance.n):
        classes[color[j]].append(j)
    # heaviest class first; speeds are already non-increasing, so machine
    # index == speed rank
    by_weight = sorted(
        range(k), key=lambda c: (-sum(instance.p[j] for j in classes[c]), c)
    )
    assignment = [-1] * instance.n
    loads = [0] * instance.m
    machine_class = [-1] * instance.m
    for rank, c in enumerate(by_weight):
        for j in classes[c]:
            assignment[j] = rank
            loads[rank] += instance.p[j]
        machine_class[rank] = c
    # rebalance: spare machines (rank >= k) may take jobs from loaded
    # machines one class each — move whole classes only when it helps is
    # overkill; instead move single jobs to empty machines while the move
    # strictly lowers the makespan estimate
    if k < instance.m:
        changed = True
        while changed:
            changed = False
            worst = max(
                range(instance.m), key=lambda i: Fraction(loads[i]) / instance.speeds[i]
            )
            if loads[worst] == 0:
                break
            movable = [j for j in range(instance.n) if assignment[j] == worst]
            for i in range(instance.m):
                if loads[i] > 0 or i == worst:
                    continue
                # an empty machine can adopt any single job (independent
                # sets of size one), preferring the longest one
                j = max(movable, key=lambda jj: instance.p[jj])
                before = Fraction(loads[worst]) / instance.speeds[worst]
                after_worst = Fraction(loads[worst] - instance.p[j]) / instance.speeds[worst]
                after_new = Fraction(instance.p[j]) / instance.speeds[i]
                if max(after_worst, after_new) < before and len(movable) > 1:
                    assignment[j] = i
                    loads[i] += instance.p[j]
                    loads[worst] -= instance.p[j]
                    changed = True
                break
    return Schedule(instance, assignment)


def _per_job_greedy(
    instance: SchedulingInstance, order: list[int]
) -> Schedule:
    """Eligibility-aware per-job assignment in coloring order."""
    graph = instance.graph
    machine_jobs: list[set[int]] = [set() for _ in range(instance.m)]
    completions: list[Fraction] = [Fraction(0)] * instance.m
    assignment = [-1] * instance.n
    for j in order:
        neighbors = graph.neighbors(j)
        best_i = None
        best_done: Fraction | None = None
        for i in range(instance.m):
            t = instance.processing_time(i, j)
            if t is None or machine_jobs[i] & neighbors:
                continue
            done = completions[i] + t
            if best_done is None or done < best_done:
                best_done = done
                best_i = i
        if best_i is None:
            raise InfeasibleInstanceError(
                f"no machine can take job {j}: every eligible machine "
                "already holds a conflicting job"
            )
        assignment[j] = best_i
        machine_jobs[best_i].add(j)
        completions[best_i] = best_done  # type: ignore[assignment]
    return Schedule(instance, assignment)


def conflict_color_split(instance: SchedulingInstance) -> Schedule:
    """Schedule any conflict-graph instance via optimal greedy coloring.

    Colors the conflict graph along an MCS order and distributes the
    color classes over the machines.  Raises
    :exc:`~repro.exceptions.InfeasibleInstanceError` when the coloring
    needs more colors than there are machines — an exact infeasibility
    proof on chordal (hence block) and complete multipartite graphs,
    conservative on other families.

    No approximation guarantee is claimed; this is the engine's
    feasibility-first fallback for conflict-graph families and
    eligibility-masked instances no paper algorithm covers.
    """
    order = mcs_order(instance.graph)
    color = greedy_coloring(instance.graph, order)
    k = max(color, default=-1) + 1
    if k > instance.m:
        raise InfeasibleInstanceError(
            f"conflict graph needs {k} machines (greedy coloring classes), "
            f"got {instance.m}"
        )
    uniform_unmasked = (
        isinstance(instance, UniformInstance) and not instance.has_eligibility
    )
    if uniform_unmasked:
        return _split_classes_uniform(instance, color, k)
    return _per_job_greedy(instance, order)
