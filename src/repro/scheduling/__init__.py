"""Scheduling substrate: instances, schedules, exact lower bounds, list
scheduling, exact solvers (branch-and-bound, two-machine dynamic
programming / FPTAS) and the literature baselines used for comparison."""

from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
    UnrelatedInstance,
    identical_instance,
    unit_uniform_instance,
    make_uniform_instance,
)
from repro.scheduling.schedule import Schedule, schedule_from_groups
from repro.scheduling.bounds import (
    min_cover_time,
    area_lower_bound,
    pmax_lower_bound,
    uniform_capacity_lower_bound,
    unrelated_lower_bound,
)
from repro.scheduling.list_scheduling import (
    assign_group_greedy,
    schedule_job_classes,
    graph_aware_greedy,
)
from repro.scheduling.brute_force import brute_force_optimal, brute_force_makespan
from repro.scheduling.dp_unrelated import solve_r2_dp, DPResult
from repro.scheduling.baselines import (
    bjw_identical_approx,
    r_color_split,
    two_machine_split,
    unconstrained_lpt,
)
from repro.scheduling.dual_approx import (
    DualApproxResult,
    dual_approx_identical,
    dual_feasibility_test,
)
from repro.scheduling.lp_rounding import (
    LpRoundingResult,
    greedy_min_time_schedule,
    lst_two_approx,
)
from repro.scheduling.local_search import LocalSearchResult, improve_schedule
from repro.scheduling.conflict_split import (
    conflict_color_split,
    greedy_coloring,
    mcs_order,
)

__all__ = [
    "SchedulingInstance",
    "UniformInstance",
    "UnrelatedInstance",
    "identical_instance",
    "unit_uniform_instance",
    "make_uniform_instance",
    "Schedule",
    "schedule_from_groups",
    "min_cover_time",
    "area_lower_bound",
    "pmax_lower_bound",
    "uniform_capacity_lower_bound",
    "unrelated_lower_bound",
    "assign_group_greedy",
    "schedule_job_classes",
    "graph_aware_greedy",
    "brute_force_optimal",
    "brute_force_makespan",
    "solve_r2_dp",
    "DPResult",
    "bjw_identical_approx",
    "r_color_split",
    "two_machine_split",
    "unconstrained_lpt",
    "DualApproxResult",
    "dual_approx_identical",
    "dual_feasibility_test",
    "LpRoundingResult",
    "greedy_min_time_schedule",
    "lst_two_approx",
    "LocalSearchResult",
    "improve_schedule",
    "conflict_color_split",
    "greedy_coloring",
    "mcs_order",
]
