"""Dual-approximation PTAS for ``P||Cmax`` (related work [11]).

Hochbaum and Shmoys introduced the *dual approximation* framework the
paper cites as [11]: a procedure that, given a deadline ``T``, either
produces a schedule of makespan at most ``(1 + eps) T`` or certifies that
no schedule of makespan at most ``T`` exists; a bisection over ``T``
turns it into a ``(1 + eps)``-approximation.  We implement the classical
identical-machines scheme exactly (all arithmetic in rationals):

* jobs larger than ``eps * T`` are *big*; their sizes are rounded down to
  multiples of ``eps^2 * T``, leaving at most ``1/eps^2`` distinct
  classes with at most ``1/eps`` big jobs per machine;
* the big jobs are bin-packed into deadline-``T`` machines by an exact
  dynamic program over class-count vectors (polynomial for fixed
  ``eps``);
* small jobs go greedily onto any machine with load below ``T``.

If the packing needs more than ``m`` machines, or a small job finds every
machine at load ``>= T``, then total work exceeds ``m T`` and ``OPT > T``
is certified.  Otherwise every machine ends at most ``eps*T`` above
``T`` from rounding plus at most one small job, i.e. within
``(1 + eps) T``.

The uniform-machine generalisation in [11] (and its EPTAS successor
[14]) uses a substantially more intricate bin-packing-with-variable-bins
argument; per DESIGN.md §5 we substitute graph-blind LPT (classical
factor 2 on uniform machines) where the experiments need a ``Q||Cmax``
comparator, and use this PTAS on the identical-machine suites.

This substrate is **graph-blind by contract**: it requires an edgeless
incompatibility graph and refuses anything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.exceptions import InvalidInstanceError
from repro.scheduling.baselines import unconstrained_lpt
from repro.scheduling.instance import UniformInstance
from repro.scheduling.schedule import Schedule
from repro.utils.rationals import floor_fraction

__all__ = ["DualApproxResult", "dual_feasibility_test", "dual_approx_identical"]


@dataclass(frozen=True)
class DualApproxResult:
    """Outcome of the dual-approximation bisection.

    ``deadline`` is the smallest deadline that the dual test accepted;
    the certified guarantee is ``schedule.makespan <= (1 + eps) * C*max``.
    """

    schedule: Schedule
    deadline: Fraction
    tests_run: int


def _require_substrate_instance(instance: UniformInstance) -> None:
    if instance.graph.edge_count:
        raise InvalidInstanceError(
            "the dual-approximation PTAS is a P||Cmax substrate: the "
            "incompatibility graph must be edgeless"
        )
    if not instance.is_identical:
        raise InvalidInstanceError(
            "the dual-approximation PTAS handles identical machines; "
            "use LPT or Algorithm 1 for uniform speeds"
        )


def _pack_big_jobs(
    units: Sequence[int], capacity_units: int
) -> list[list[int]] | None:
    """Pack items of integer sizes ``units`` into bins of ``capacity_units``.

    Exact minimum-bin packing by DP over class-count vectors, as in the
    dual-approximation argument (``units`` are the rounded big-job sizes
    in ``eps^2 T`` units, so the universe of states is polynomial for
    fixed ``eps``).  Returns per-bin lists of item indices, or ``None``
    when some item alone exceeds the capacity.
    """
    if not units:
        return []
    if max(units) > capacity_units:
        return None
    # group identical sizes into classes
    classes = sorted(set(units), reverse=True)
    index_pools: dict[int, list[int]] = {c: [] for c in classes}
    for idx, u in enumerate(units):
        index_pools[u].append(idx)
    counts = tuple(len(index_pools[c]) for c in classes)

    # enumerate maximal single-bin configurations available from `state`
    def maximal_configs(state: tuple[int, ...]) -> list[tuple[int, ...]]:
        configs: list[tuple[int, ...]] = []
        chosen = [0] * len(classes)

        def extend(pos: int, room: int) -> None:
            if pos == len(classes):
                # maximal: no class with remaining items still fits
                if not any(
                    state[i] - chosen[i] > 0 and classes[i] <= room
                    for i in range(len(classes))
                ):
                    configs.append(tuple(chosen))
                return
            max_take = min(state[pos], room // classes[pos])
            for take in range(max_take, -1, -1):
                chosen[pos] = take
                extend(pos + 1, room - take * classes[pos])
            chosen[pos] = 0

        extend(0, capacity_units)
        return [c for c in configs if any(c)]

    memo: dict[tuple[int, ...], tuple[int, tuple[int, ...] | None]] = {}

    def best(state: tuple[int, ...]) -> int:
        """Minimum bins to pack `state`; memoised with chosen config."""
        if not any(state):
            return 0
        if state in memo:
            return memo[state][0]
        best_bins, best_cfg = None, None
        for cfg in maximal_configs(state):
            rest = tuple(s - c for s, c in zip(state, cfg))
            sub = best(rest)
            if best_bins is None or sub + 1 < best_bins:
                best_bins, best_cfg = sub + 1, cfg
        # repro: allow[RS004] reason=maximal_configs yields at least one config for any non-empty state
        assert best_bins is not None
        memo[state] = (best_bins, best_cfg)
        return best_bins

    best(counts)
    # reconstruct bins
    bins: list[list[int]] = []
    state = counts
    while any(state):
        _, cfg = memo[state]
        # repro: allow[RS004] reason=memo invariant: every non-terminal state stores the config it chose
        assert cfg is not None
        bin_items: list[int] = []
        for i, take in enumerate(cfg):
            for _ in range(take):
                bin_items.append(index_pools[classes[i]].pop())
        bins.append(bin_items)
        state = tuple(s - c for s, c in zip(state, cfg))
    return bins


def dual_feasibility_test(
    instance: UniformInstance, deadline: Fraction, eps: Fraction
) -> Schedule | None:
    """The [11] dual test: schedule within ``(1+eps)*deadline`` or ``None``.

    ``None`` certifies that no schedule of makespan ``<= deadline``
    exists.  Requires an identical-machine, edgeless instance.
    """
    _require_substrate_instance(instance)
    if eps <= 0 or eps > 1:
        raise InvalidInstanceError(f"eps must be in (0, 1], got {eps}")
    n, m = instance.n, instance.m
    if n == 0:
        return Schedule(instance, [])
    # identical machines of common speed s: job j takes p_j / s time, so
    # all comparisons against the (time-unit) deadline must divide by s —
    # with s != 1 the p-unit arithmetic used to reject every deadline and
    # crash the bisection (caught by the certification auditor)
    speed = instance.speeds[0]
    times = [Fraction(instance.p[j]) / speed for j in range(n)]
    total_time = sum(times, Fraction(0))
    if deadline <= 0 or total_time > m * deadline:
        return None
    if max(times) > deadline:
        return None

    threshold = eps * deadline
    big = [j for j in range(n) if times[j] > threshold]
    small = [j for j in range(n) if times[j] <= threshold]

    loads = [Fraction(0)] * m
    assignment = [-1] * n
    if big:
        unit = eps * eps * deadline
        units = [floor_fraction(times[j] / unit) for j in big]
        capacity_units = floor_fraction(deadline / unit)
        bins = _pack_big_jobs(units, capacity_units)
        if bins is None or len(bins) > m:
            return None
        for i, bin_items in enumerate(bins):
            for item in bin_items:
                j = big[item]
                assignment[j] = i
                loads[i] += times[j]
    for j in small:
        target = None
        for i in range(m):
            if loads[i] < deadline and (target is None or loads[i] < loads[target]):
                target = i
        if target is None:
            # every machine already at >= deadline: total work > m*deadline
            return None
        assignment[j] = target
        loads[target] += times[j]
    return Schedule(instance, assignment)


def dual_approx_identical(
    instance: UniformInstance,
    eps: Fraction | str | float = Fraction(1, 3),
    max_tests: int = 48,
) -> DualApproxResult:
    """``(1+eps)``-approximation for ``P||Cmax`` by dual bisection.

    Splits ``eps`` between the dual test (``eps/4``) and the bisection
    gap (``eps/4``), so ``(1 + eps/4)^2 <= 1 + eps`` for ``eps <= 1``.
    """
    _require_substrate_instance(instance)
    eps = Fraction(str(eps)) if isinstance(eps, float) else Fraction(eps)
    if eps <= 0 or eps > 1:
        raise InvalidInstanceError(f"eps must be in (0, 1], got {eps}")
    if instance.n == 0:
        return DualApproxResult(Schedule(instance, []), Fraction(0), 0)
    inner = eps / 4
    speed = instance.speeds[0]
    lower = max(
        Fraction(instance.pmax) / speed,
        Fraction(instance.total_p, instance.m) / speed,
    )
    upper = unconstrained_lpt(instance).makespan  # feasible: graph is edgeless
    best = dual_feasibility_test(instance, upper, inner)
    # repro: allow[RS004] reason=solver-bug tripwire kept as assert: PR 3's speed-unit bug surfaced here as a crash, which the auditor must keep classifying as one
    assert best is not None, "the LPT deadline must pass the dual test"
    tests = 1
    lo, hi = lower, upper
    while hi > lo * (1 + eps / 4) and tests < max_tests:
        mid = (lo + hi) / 2
        candidate = dual_feasibility_test(instance, mid, inner)
        tests += 1
        if candidate is not None:
            hi = mid
            if candidate.makespan < best.makespan:
                best = candidate
        else:
            lo = mid
    return DualApproxResult(best, hi, tests)
