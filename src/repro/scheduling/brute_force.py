"""Exact optimum by branch-and-bound.

Ground truth for the experiment suite at small ``n``: enumerates machine
assignments job by job, pruning branches whose makespan already meets the
incumbent and skipping conflict-violating placements.  Exponential — the
problem is strongly NP-hard even without the graph — but comfortably exact
for the oracle sizes used in tests (``n <= ~16``).

Algorithm 1 also calls this directly for its trivial ``sum p_j <= 4`` base
case (step 1).
"""

from __future__ import annotations

from fractions import Fraction

from repro.exceptions import BoundExcludedError, InfeasibleInstanceError
from repro.scheduling.instance import SchedulingInstance, UniformInstance
from repro.scheduling.schedule import Schedule

__all__ = ["brute_force_optimal", "brute_force_makespan"]


def _job_order(instance: SchedulingInstance) -> list[int]:
    """Branch on big jobs first (uniform) or high-degree jobs first."""
    if isinstance(instance, UniformInstance):
        return sorted(range(instance.n), key=lambda j: (-instance.p[j], -instance.graph.degree(j)))
    return sorted(range(instance.n), key=lambda j: -instance.graph.degree(j))


def brute_force_optimal(
    instance: SchedulingInstance,
    upper_bound: Fraction | None = None,
) -> Schedule:
    """An optimal schedule, or :exc:`InfeasibleInstanceError`.

    ``upper_bound`` (exclusive-ish: only strictly better schedules are
    explored once a schedule at the bound is found) can seed pruning with a
    heuristic solution's makespan.  The two empty outcomes are
    distinguishable: with no ``upper_bound`` an empty search means the
    instance is infeasible (:exc:`InfeasibleInstanceError`); with one it
    only means no schedule is *strictly better* than the bound, reported
    as :exc:`BoundExcludedError` so incumbent-seeding callers don't
    misreport feasible instances as infeasible.
    """
    n, m = instance.n, instance.m
    if n == 0:
        return Schedule(instance, [])
    order = _job_order(instance)
    graph = instance.graph

    # cached processing times; None marks forbidden pairs
    times: list[list[Fraction | None]] = [
        [instance.processing_time(i, j) for j in range(n)] for i in range(m)
    ]

    best_assignment: list[int] | None = None
    best_makespan: Fraction | None = upper_bound
    completions: list[Fraction] = [Fraction(0)] * m
    machine_jobs: list[set[int]] = [set() for _ in range(m)]
    assignment: list[int] = [-1] * n

    def place(pos: int) -> None:
        nonlocal best_assignment, best_makespan
        if pos == n:
            span = max(completions)
            if best_makespan is None or span < best_makespan:
                best_makespan = span
                best_assignment = assignment.copy()
            return
        j = order[pos]
        neighbors = graph.neighbors(j)
        # machine choice order: emptier machines first tends to find good
        # incumbents early
        for i in sorted(range(m), key=lambda i: completions[i]):
            t = times[i][j]
            if t is None or machine_jobs[i] & neighbors:
                continue
            if not machine_jobs[i] and _earlier_equivalent_empty(i):
                # an identical empty machine was already branched on
                continue
            done = completions[i] + t
            if best_makespan is not None and done >= best_makespan:
                continue
            completions[i] += t
            machine_jobs[i].add(j)
            assignment[j] = i
            place(pos + 1)
            completions[i] -= t
            machine_jobs[i].remove(j)
            assignment[j] = -1

    def _earlier_equivalent_empty(i: int) -> bool:
        # two empty machines are interchangeable iff they process every job
        # in the same time; branching on the first of an equivalence class
        # suffices (iteration over empty machines is stable by index).
        for other in range(i):
            if machine_jobs[other]:
                continue
            if all(times[other][j] == times[i][j] for j in range(n)):
                return True
        return False

    place(0)
    if best_assignment is None:
        if upper_bound is not None:
            raise BoundExcludedError(
                f"no schedule with makespan < {upper_bound}; the seeded "
                "upper bound excluded the whole search space (instance "
                "feasibility is undetermined)"
            )
        raise InfeasibleInstanceError("no feasible schedule exists")
    return Schedule(instance, best_assignment)


def brute_force_makespan(instance: SchedulingInstance) -> Fraction:
    """Makespan of an optimal schedule (:func:`brute_force_optimal`)."""
    return brute_force_optimal(instance).makespan
