"""Local-search polishing of feasible schedules.

The paper's algorithms stop at their guaranteed bounds; a practical
library wants to squeeze the constant.  :func:`improve_schedule` takes
any feasible schedule and applies first-improvement **moves** (relocate
one job off a busiest machine) and **swaps** (exchange two jobs across
machines).  A step is accepted when it improves the pair
``(Cmax, number of machines attaining Cmax)`` lexicographically — the
count tiebreak lets the search drain plateaus where several machines
share the peak, and strict lexicographic descent over a finite state
space guarantees termination.  Every step re-checks independence and
forbidden pairs, so feasibility is invariant; the result is never worse
than the input, hence all approximation guarantees carry over.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.scheduling.schedule import Schedule

__all__ = ["LocalSearchResult", "improve_schedule"]


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of :func:`improve_schedule`."""

    schedule: Schedule
    initial_makespan: Fraction
    moves: int
    swaps: int
    rounds: int

    @property
    def improvement(self) -> Fraction:
        """Absolute makespan reduction achieved."""
        return self.initial_makespan - self.schedule.makespan


def improve_schedule(
    schedule: Schedule,
    max_rounds: int = 1000,
) -> LocalSearchResult:
    """Polish ``schedule`` by lexicographic first-improvement steps.

    The input must be feasible (validated).  Each round scans the
    critical machines and applies the first move or swap that lowers
    ``(Cmax, #critical)``; the search stops when a full round finds
    nothing or after ``max_rounds`` steps.
    """
    schedule.assert_feasible()
    inst = schedule.instance
    m = inst.m
    assignment = list(schedule.assignment)
    machine_jobs: list[set[int]] = [set() for _ in range(m)]
    for j, i in enumerate(assignment):
        machine_jobs[i].add(j)
    loads: list[Fraction] = [
        inst.machine_completion(i, machine_jobs[i]) for i in range(m)
    ]
    initial = max(loads) if loads else Fraction(0)
    graph = inst.graph
    moves = swaps = rounds = 0

    def can_host(i: int, j: int, leaving: int | None = None) -> bool:
        """Whether machine ``i`` may take job ``j`` (graph + forbidden),
        pretending job ``leaving`` has already left it."""
        if inst.processing_time(i, j) is None:
            return False
        others = machine_jobs[i]
        for neighbor in graph.neighbors(j):
            if neighbor in others and neighbor != leaving:
                return False
        return True

    def lex_better(src: int, dst: int, new_src: Fraction, new_dst: Fraction) -> bool:
        """Whether replacing ``loads[src], loads[dst]`` with the new
        values lowers ``(peak, count-at-peak)`` lexicographically."""
        old_peak = max(loads)
        old_count = sum(1 for value in loads if value == old_peak)
        other_peak = max(
            (loads[i] for i in range(m) if i not in (src, dst)),
            default=Fraction(0),
        )
        new_peak = max(other_peak, new_src, new_dst)
        if new_peak != old_peak:
            return new_peak < old_peak
        new_count = sum(
            1 for i in range(m) if i not in (src, dst) and loads[i] == new_peak
        )
        new_count += (new_src == new_peak) + (new_dst == new_peak)
        return new_count < old_count

    def try_round() -> bool:
        nonlocal moves, swaps
        cmax = max(loads)
        critical = [i for i in range(m) if loads[i] == cmax]
        for src in critical:
            for j in sorted(machine_jobs[src]):
                t_src = inst.processing_time(src, j)
                # relocation: src loses j, dst gains it
                for dst in sorted(range(m), key=lambda i: loads[i]):
                    if dst == src:
                        continue
                    t_dst = inst.processing_time(dst, j)
                    if t_dst is None or not can_host(dst, j):
                        continue
                    if lex_better(src, dst, loads[src] - t_src, loads[dst] + t_dst):
                        _apply_move(j, src, dst, t_src, t_dst)
                        moves += 1
                        return True
                # swap: j leaves src, some job k arrives from dst
                for dst in range(m):
                    if dst == src:
                        continue
                    for k in sorted(machine_jobs[dst]):
                        t_k_dst = inst.processing_time(dst, k)
                        t_k_src = inst.processing_time(src, k)
                        t_j_dst = inst.processing_time(dst, j)
                        if t_k_src is None or t_j_dst is None:
                            continue
                        if not can_host(src, k, leaving=j):
                            continue
                        if not can_host(dst, j, leaving=k):
                            continue
                        new_src = loads[src] - t_src + t_k_src
                        new_dst = loads[dst] - t_k_dst + t_j_dst
                        if lex_better(src, dst, new_src, new_dst):
                            _apply_swap(j, k, src, dst)
                            swaps += 1
                            return True
        return False

    def _apply_move(j: int, src: int, dst: int, t_src, t_dst) -> None:
        machine_jobs[src].remove(j)
        machine_jobs[dst].add(j)
        loads[src] -= t_src
        loads[dst] += t_dst
        assignment[j] = dst

    def _apply_swap(j: int, k: int, src: int, dst: int) -> None:
        machine_jobs[src].remove(j)
        machine_jobs[dst].remove(k)
        machine_jobs[src].add(k)
        machine_jobs[dst].add(j)
        loads[src] += inst.processing_time(src, k) - inst.processing_time(src, j)
        loads[dst] += inst.processing_time(dst, j) - inst.processing_time(dst, k)
        assignment[j] = dst
        assignment[k] = src

    while rounds < max_rounds and try_round():
        rounds += 1

    improved = Schedule(inst, assignment)
    # repro: allow[RS004] reason=monotonicity invariant of the accept-only-improving loop; a regression is a solver bug, not bad input
    assert improved.makespan <= initial, "local search must never regress"
    return LocalSearchResult(
        schedule=improved,
        initial_makespan=initial,
        moves=moves,
        swaps=swaps,
        rounds=rounds,
    )
