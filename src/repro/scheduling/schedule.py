"""Schedules and their validation.

A schedule is a total assignment of jobs to machines; for ``Cmax`` with no
preemption the order of jobs within a machine is irrelevant, so the
assignment *is* the schedule.  Feasibility (the paper's defining
constraint) means the job set of every machine is an independent set of the
incompatibility graph, and no job sits on a machine that forbids it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.exceptions import InvalidScheduleError
from repro.scheduling.instance import SchedulingInstance

__all__ = ["Schedule", "schedule_from_groups"]


class Schedule:
    """An assignment of every job to a machine.

    Parameters
    ----------
    instance:
        The instance being scheduled.
    assignment:
        ``assignment[j]`` is the machine index of job ``j``.
    check:
        When true (default) the schedule is validated eagerly and an
        :exc:`InvalidScheduleError` is raised on infeasibility.  Baseline
        heuristics that deliberately ignore the incompatibility graph pass
        ``check=False`` and report :meth:`is_feasible` instead.
    """

    __slots__ = ("instance", "assignment", "_completions")

    def __init__(
        self,
        instance: SchedulingInstance,
        assignment: Sequence[int],
        check: bool = True,
    ) -> None:
        if len(assignment) != instance.n:
            raise InvalidScheduleError(
                f"assignment covers {len(assignment)} of {instance.n} jobs"
            )
        for j, i in enumerate(assignment):
            if not (0 <= i < instance.m):
                raise InvalidScheduleError(
                    f"job {j} assigned to machine {i}, valid range is 0..{instance.m - 1}"
                )
        self.instance = instance
        self.assignment: tuple[int, ...] = tuple(int(i) for i in assignment)
        self._completions: tuple[Fraction, ...] | None = None
        if check:
            self.assert_feasible()

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #

    def jobs_on(self, machine: int) -> list[int]:
        """Jobs assigned to ``machine`` (ascending job ids)."""
        return [j for j, i in enumerate(self.assignment) if i == machine]

    def machine_groups(self) -> list[list[int]]:
        """Per-machine job lists (index = machine)."""
        groups: list[list[int]] = [[] for _ in range(self.instance.m)]
        for j, i in enumerate(self.assignment):
            groups[i].append(j)
        return groups

    # ------------------------------------------------------------------ #
    # objective
    # ------------------------------------------------------------------ #

    def completion_times(self) -> tuple[Fraction, ...]:
        """Completion time of every machine (cached)."""
        if self._completions is None:
            inst = self.instance
            self._completions = tuple(
                inst.machine_completion(i, jobs)
                for i, jobs in enumerate(self.machine_groups())
            )
        return self._completions

    @property
    def makespan(self) -> Fraction:
        """``Cmax``: the largest machine completion time."""
        comps = self.completion_times()
        return max(comps) if comps else Fraction(0)

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #

    def violations(self) -> list[str]:
        """All feasibility violations, as human-readable strings."""
        problems: list[str] = []
        inst = self.instance
        graph = inst.graph
        for i, jobs in enumerate(self.machine_groups()):
            for j in jobs:
                if not inst.allows(i, j):
                    problems.append(f"job {j} forbidden on machine {i}")
            job_set = set(jobs)
            for j in jobs:
                bad = graph.neighbors(j) & job_set
                for other in bad:
                    if j < other:
                        problems.append(
                            f"incompatible jobs {j} and {other} share machine {i}"
                        )
        return problems

    def is_feasible(self) -> bool:
        """Whether the schedule satisfies every constraint."""
        return not self.violations()

    def assert_feasible(self) -> None:
        """Raise :exc:`InvalidScheduleError` listing all violations, if any."""
        problems = self.violations()
        if problems:
            raise InvalidScheduleError("; ".join(problems))

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schedule):
            return NotImplemented
        return self.instance is other.instance and self.assignment == other.assignment

    def __hash__(self) -> int:
        return hash((id(self.instance), self.assignment))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Schedule(makespan={self.makespan}, m={self.instance.m})"


def schedule_from_groups(
    instance: SchedulingInstance,
    groups: Mapping[int, Iterable[int]],
    check: bool = True,
) -> Schedule:
    """Build a schedule from a ``machine -> jobs`` mapping.

    Every job must appear exactly once across all groups.
    """
    assignment = [-1] * instance.n
    for machine, jobs in groups.items():
        for j in jobs:
            if assignment[j] != -1:
                raise InvalidScheduleError(f"job {j} assigned twice")
            assignment[j] = machine
    missing = [j for j, i in enumerate(assignment) if i == -1]
    if missing:
        raise InvalidScheduleError(f"jobs not assigned: {missing[:10]}")
    return Schedule(instance, assignment, check=check)
