"""Exact lower bounds on the optimal makespan.

The key quantity is the paper's ``C**max`` (Algorithm 1, step 5 and
Algorithm 2, step 2): the least time ``T`` at which the *rounded-down*
machine capacities ``floor(s_i * T)`` cover a given processing demand.
Because jobs have integer sizes, a machine finishing within ``T`` can carry
at most ``floor(s_i * T)`` units of work, so every such ``T`` threshold is
a genuine lower bound on ``C*max``.

All computations are exact over rationals; :func:`min_cover_time` uses the
observation (cf. Lemma 10) that the count function ``T -> sum_i
floor(s_i T)`` only jumps at times of the form ``c / s_i``, and that the
answer lives in the window ``[D / S, (D + m) / S]`` (``S = sum s_i``) which
contains only ``O(m)`` candidate jump points.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence

from repro import fastpath
from repro.exceptions import InvalidInstanceError
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.utils.rationals import ceil_fraction, floor_fraction

__all__ = [
    "min_cover_time",
    "min_cover_time_with_loads",
    "area_lower_bound",
    "pmax_lower_bound",
    "uniform_capacity_lower_bound",
    "unrelated_lower_bound",
]


def _capacity_at(speeds: Sequence[Fraction], t: Fraction) -> int:
    """``sum_i floor(s_i * t)`` — total integer capacity by time ``t``."""
    return sum(floor_fraction(s * t) for s in speeds)


def min_cover_time(speeds: Sequence[Fraction], demand: int) -> Fraction:
    """Least ``T >= 0`` with ``sum_i floor(s_i * T) >= demand`` (exact).

    Raises :exc:`InvalidInstanceError` when no machines are given but
    demand is positive.

    Routed through :mod:`repro.fastpath` (scaled-integer/numpy jump-point
    search, differentially tested to return the canonically identical
    Fraction) unless ``REPRO_FASTPATH=0``, in which case the rational
    reference below runs.
    """
    if fastpath.enabled():
        return fastpath.min_cover_time_fast(speeds, demand)
    if demand <= 0:
        return Fraction(0)
    if not speeds:
        raise InvalidInstanceError("positive demand but no machines")
    total_speed = sum(speeds)
    lo = Fraction(demand) / total_speed          # capacity(lo) <= demand
    hi = Fraction(demand + len(speeds)) / total_speed  # capacity(hi) >= demand
    candidates: set[Fraction] = {hi}
    for s in speeds:
        c_lo = max(1, ceil_fraction(s * lo))
        c_hi = floor_fraction(s * hi)
        for c in range(c_lo, c_hi + 1):
            candidates.add(Fraction(c) / s)
    feasible = sorted(t for t in candidates if lo <= t <= hi)
    # binary search the monotone predicate capacity(t) >= demand
    left, right = 0, len(feasible) - 1
    answer = feasible[right]
    while left <= right:
        mid = (left + right) // 2
        if _capacity_at(speeds, feasible[mid]) >= demand:
            answer = feasible[mid]
            right = mid - 1
        else:
            left = mid + 1
    return answer


def min_cover_time_with_loads(
    speeds: Sequence[Fraction],
    loads: Sequence[int],
    demand: int,
) -> Fraction:
    """Least ``T`` finishing ``demand`` extra units on pre-loaded machines.

    Machine ``i`` already carries ``loads[i]`` integer units of work; the
    answer is the least ``T`` with ``T >= max_i loads[i] / s_i`` and
    ``sum_i max(0, floor(s_i * T) - loads[i]) >= demand``.  This is the
    partial-assignment generalisation of :func:`min_cover_time` (all
    loads zero reduces to it) and is what the certification oracle
    (:mod:`repro.certify.oracle`) prunes with: any completion of a
    partial schedule must fit the remaining integer demand into the
    rounded-down residual capacities.

    With ``demand <= 0`` this is just the current completion frontier
    ``max_i loads[i] / s_i``.

    Routed through :mod:`repro.fastpath` unless ``REPRO_FASTPATH=0``
    (see :func:`min_cover_time`).
    """
    if fastpath.enabled():
        return fastpath.min_cover_time_with_loads_fast(speeds, loads, demand)
    if len(speeds) != len(loads):
        raise InvalidInstanceError(
            f"{len(loads)} loads for {len(speeds)} machines"
        )
    if not speeds:
        if demand > 0:
            raise InvalidInstanceError("positive demand but no machines")
        return Fraction(0)
    frontier = max(Fraction(load) / s for load, s in zip(loads, speeds))
    if demand <= 0:
        return frontier
    total_speed = sum(speeds)
    total_units = sum(loads) + demand
    lo = max(frontier, Fraction(total_units) / total_speed)
    # at hi = (U + m) / S every machine wastes < 1 unit to rounding, so
    # the residual capacities cover the demand; the frontier keeps the
    # max() condition satisfied
    hi = max(frontier, Fraction(total_units + len(speeds)) / total_speed)
    candidates: set[Fraction] = {hi}
    for s in speeds:
        c_lo = max(1, ceil_fraction(s * lo))
        c_hi = floor_fraction(s * hi)
        for c in range(c_lo, c_hi + 1):
            candidates.add(Fraction(c) / s)
    feasible = sorted(t for t in candidates if lo <= t <= hi)

    def _covers(t: Fraction) -> bool:
        residual = 0
        for s, load in zip(speeds, loads):
            residual += max(0, floor_fraction(s * t) - load)
            if residual >= demand:
                return True
        return False

    left, right = 0, len(feasible) - 1
    answer = feasible[right]
    while left <= right:
        mid = (left + right) // 2
        if _covers(feasible[mid]):
            answer = feasible[mid]
            right = mid - 1
        else:
            left = mid + 1
    return answer


def area_lower_bound(instance: UniformInstance) -> Fraction:
    """Fractional relaxation ``sum p_j / sum s_i`` (ignores integrality)."""
    return Fraction(instance.total_p) / sum(instance.speeds)


def pmax_lower_bound(instance: UniformInstance) -> Fraction:
    """``p_max / s_1``: the longest job on the fastest machine."""
    if instance.n == 0:
        return Fraction(0)
    return Fraction(instance.pmax) / instance.speeds[0]


def uniform_capacity_lower_bound(
    instance: UniformInstance,
    off_first_machine_demand: int | None = None,
) -> Fraction:
    """The paper's ``C**max`` for uniform machines.

    Least ``T`` such that

    * rounded-down capacities of all machines cover ``sum p_j``,
    * rounded-down capacities of ``M_2..M_m`` cover
      ``off_first_machine_demand`` (Algorithm 1 uses the weight of
      ``J \\ I`` — jobs that provably cannot all sit on ``M_1``),
    * ``M_1`` can process ``p_max``.

    Each condition is monotone in ``T`` so the least feasible ``T`` is the
    max of the three per-condition thresholds.  Always a lower bound on
    ``C*max`` provided ``off_first_machine_demand`` really must leave
    ``M_1`` in every feasible schedule.
    """
    t_all = min_cover_time(instance.speeds, instance.total_p)
    t_rest = Fraction(0)
    if off_first_machine_demand:
        if instance.m < 2:
            raise InvalidInstanceError(
                "demand must leave machine 1 but there is only one machine"
            )
        t_rest = min_cover_time(instance.speeds[1:], off_first_machine_demand)
    return max(t_all, t_rest, pmax_lower_bound(instance))


def unrelated_lower_bound(instance: UnrelatedInstance) -> Fraction:
    """Simple exact bounds for ``R``: ``max_j min_i p_ij`` and the
    fractional volume ``(sum_j min_i p_ij) / m``.

    Raises :exc:`InvalidInstanceError` if some job has no eligible
    machine — :class:`UnrelatedInstance` rejects that at construction,
    so seeing it here means the instance was mutated or corrupted (a
    bare ``assert`` would vanish under ``python -O``).
    """
    if instance.n == 0:
        return Fraction(0)
    mins: list[Fraction] = []
    for j in range(instance.n):
        best: Fraction | None = None
        for i in range(instance.m):
            t = instance.times[i][j]
            if t is not None and (best is None or t < best):
                best = t
        if best is None:
            raise InvalidInstanceError(
                f"job {j} is forbidden on every machine (instance "
                "invariant violated after construction)"
            )
        mins.append(best)
    return max(max(mins), sum(mins) / instance.m)
