"""List scheduling primitives.

Algorithm 1 (step 10) and Algorithm 2 (step 4) both finish by "simple list
scheduling" of an *independent* job class onto a dedicated machine group:
jobs are placed one by one on the machine that minimises the resulting
completion time.  Because each group receives jobs from a single color
class, no incompatibility can arise within a group, which is exactly why
the paper can afford plain list scheduling there.

:func:`graph_aware_greedy` is the natural heuristic baseline that works on
the raw problem (any machine, checking conflicts on the fly); it carries no
guarantee and may even fail to complete — experiments record both.
"""

from __future__ import annotations

import heapq
import math
from fractions import Fraction
from typing import Iterable, Sequence

from repro import fastpath
from repro.exceptions import InvalidInstanceError
from repro.scheduling.instance import SchedulingInstance, UniformInstance
from repro.scheduling.schedule import Schedule

__all__ = [
    "assign_group_greedy",
    "schedule_job_classes",
    "graph_aware_greedy",
    "lpt_order",
]


def lpt_order(instance: UniformInstance, jobs: Iterable[int]) -> list[int]:
    """Jobs sorted by non-increasing processing requirement (LPT), ties by id."""
    return sorted(jobs, key=lambda j: (-instance.p[j], j))


def assign_group_greedy(
    instance: UniformInstance,
    jobs: Sequence[int],
    machines: Sequence[int],
) -> dict[int, int]:
    """Greedy list scheduling of ``jobs`` onto the machine subset ``machines``.

    Jobs are processed in LPT order; each goes to the machine whose
    completion time after receiving it is smallest (ties: faster/lower
    machine index).  Returns a ``job -> machine`` mapping.  The caller is
    responsible for ``jobs`` being an independent set — this routine
    never inspects the graph, mirroring the paper's usage.

    The single-job step is the speed-grouped structure from PR 4:
    machines grouped by speed with one load-min-heap per distinct speed
    (for a fixed speed the best candidate is always the least-loaded,
    earliest-listed machine), the surviving ``g``-way comparison of
    ``(load + p_j) / s`` values done by integer cross-multiplication.
    *Runs* of equal-``p_j`` jobs — which LPT order makes contiguous —
    are placed through an **event calendar** instead: a heap over the
    machines keyed by the exact ``(completion, rank)`` pair, where a
    machine's successive completions during the run form the arithmetic
    progression ``(load + k * p) / s``.  Popping the calendar ``r``
    times visits exactly the ``r`` lexicographically smallest
    ``(completion, rank)`` pairs, which is provably the same sequence
    the one-job-at-a-time greedy produces (a non-top machine of any
    speed group is dominated by its group top in this order, so the
    global calendar minimum always coincides with the per-group-top
    scan's choice).  Selection is exact either way, so the ``job ->
    machine`` mapping is identical to the pre-optimization reference:
    the machine minimising completion time, ties to the earliest
    position in ``machines``.

    Routed through :mod:`repro.fastpath` (scaled-integer/numpy kernels
    over the :class:`~repro.fastpath.normalize.IntView`, differentially
    tested byte-identical) unless ``REPRO_FASTPATH=0``, in which case
    the Fraction-keyed implementation below runs.
    """
    if fastpath.enabled():
        return fastpath.assign_group_greedy_fast(instance, jobs, machines)
    if not machines and jobs:
        raise InvalidInstanceError("cannot schedule jobs on an empty machine group")
    count = len(machines)
    speed_of = [Fraction(instance.speeds[i]) for i in machines]
    loads = [0] * count  # integer load by position in `machines`
    # speed -> heap of (integer load, position in `machines`, machine id);
    # equal loads within a group tie-break to the earlier position.
    group_ranks: dict[Fraction, list[int]] = {}
    for rank, i in enumerate(machines):
        group_ranks.setdefault(speed_of[rank], []).append(rank)

    def build_groups() -> list[tuple[int, int, list[tuple[int, int, int]]]]:
        rebuilt: list[tuple[int, int, list[tuple[int, int, int]]]] = []
        for speed, ranks in group_ranks.items():
            heap = [(loads[r], r, machines[r]) for r in ranks]
            heapq.heapify(heap)
            rebuilt.append((speed.numerator, speed.denominator, heap))
        return rebuilt

    groups = build_groups()
    groups_stale = False
    weights: list[int] | None = None
    result: dict[int, int] = {}
    p = instance.p
    order = lpt_order(instance, jobs)
    idx = 0
    while idx < len(order):
        p_j = p[order[idx]]
        end = idx
        while end < len(order) and p[order[end]] == p_j:
            end += 1
        run = order[idx:end]
        idx = end
        if len(run) > 1:
            # event calendar over machines keyed by the exact integer
            # (load + k * p_j) * den * (C / num) with C the lcm of the
            # speed numerators — the same cross-multiplication the
            # single-job scan below uses, hoisted to a common multiplier
            # so the keys are totally ordered and advance by a constant
            # integer step per machine
            if weights is None:
                common = math.lcm(*{s.numerator for s in speed_of})
                weights = [
                    s.denominator * (common // s.numerator) for s in speed_of
                ]
            steps = [p_j * w for w in weights]
            calendar = [
                ((loads[r] + p_j) * weights[r], r) for r in range(count)
            ]
            heapq.heapify(calendar)
            for j in run:
                key, r = calendar[0]
                heapq.heapreplace(calendar, (key + steps[r], r))
                result[j] = machines[r]
                loads[r] += p_j
            groups_stale = True
            continue
        if groups_stale:
            groups = build_groups()
            groups_stale = False
        (j,) = run
        # candidate completion of a group = (load + p_j) * den / num;
        # track the running best as the exact pair (best_a / best_b)
        best_heap: list[tuple[int, int, int]] | None = None
        best_a = best_b = 0
        best_rank = -1
        for num, den, heap in groups:
            load, rank, _ = heap[0]
            a = (load + p_j) * den
            if best_heap is None:
                better = True
            else:
                lhs = a * best_b
                rhs = best_a * num
                better = lhs < rhs or (lhs == rhs and rank < best_rank)
            if better:
                best_a, best_b, best_rank, best_heap = a, num, rank, heap
        if best_heap is None:
            raise InvalidInstanceError(
                "cannot list-schedule onto zero machine groups"
            )
        load, rank, i = heapq.heappop(best_heap)
        heapq.heappush(best_heap, (load + p_j, rank, i))
        loads[rank] = load + p_j
        result[j] = i
    return result


def schedule_job_classes(
    instance: UniformInstance,
    groups: Sequence[tuple[Sequence[int], Sequence[int]]],
    check: bool = True,
) -> Schedule:
    """Build a schedule from ``(job_class, machine_group)`` pairs.

    Each class is list-scheduled greedily onto its group; classes must
    partition the job set and groups should be disjoint (each machine then
    holds jobs from a single independent set).
    """
    assignment = [-1] * instance.n
    for jobs, machines in groups:
        placed = assign_group_greedy(instance, list(jobs), list(machines))
        for j, i in placed.items():
            if assignment[j] != -1:
                raise InvalidInstanceError(f"job {j} appears in two classes")
            assignment[j] = i
    missing = [j for j in range(instance.n) if assignment[j] == -1]
    if missing:
        raise InvalidInstanceError(f"jobs missing from all classes: {missing[:10]}")
    return Schedule(instance, assignment, check=check)


def graph_aware_greedy(
    instance: SchedulingInstance,
    order: Sequence[int] | None = None,
) -> Schedule | None:
    """Baseline heuristic: greedy assignment respecting conflicts on the fly.

    Processes jobs (LPT order for uniform instances unless ``order`` is
    given) and puts each on the machine minimising its completion time
    among machines that (a) allow the job and (b) currently hold no
    neighbour of it.  Returns ``None`` when some job has no feasible
    machine left — greedy is not complete for this problem, and the
    experiment suite reports its failure rate.
    """
    if order is None:
        if isinstance(instance, UniformInstance):
            order = lpt_order(instance, range(instance.n))
        else:
            order = list(range(instance.n))
    graph = instance.graph
    machine_jobs: list[set[int]] = [set() for _ in range(instance.m)]
    completions: list[Fraction] = [Fraction(0)] * instance.m
    assignment = [-1] * instance.n
    for j in order:
        neighbors = graph.neighbors(j)
        best_i = None
        best_done: Fraction | None = None
        for i in range(instance.m):
            t = instance.processing_time(i, j)
            if t is None or machine_jobs[i] & neighbors:
                continue
            done = completions[i] + t
            if best_done is None or done < best_done:
                best_done = done
                best_i = i
        if best_i is None:
            return None
        assignment[j] = best_i
        machine_jobs[best_i].add(j)
        completions[best_i] += instance.processing_time(best_i, j)  # type: ignore[operator]
    return Schedule(instance, assignment)
