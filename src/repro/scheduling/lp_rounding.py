"""Lenstra–Shmoys–Tardos LP rounding for ``R||Cmax`` (related work [18]).

The paper cites [18] as the unrelated-machine state of the art without an
incompatibility graph: no ``(3/2 - eps)``-approximation exists unless
P = NP, but a 2-approximation does.  We implement that 2-approximation as
the graph-blind baseline of the experiment suite:

1. **Deadline search.**  Binary search a deadline ``T``; pairs with
   ``p_ij > T`` are disallowed.
2. **LP feasibility.**  Solve the assignment LP ``sum_i x_ij = 1``,
   ``sum_j p_ij x_ij <= T`` over allowed pairs (scipy ``linprog``/HiGHS,
   which returns a basic optimal solution).
3. **Rounding.**  At a vertex of the LP at most ``m`` jobs are split
   between machines; the fractional pairs form a forest, so the split
   jobs can be matched to distinct machines (our Hopcroft–Karp).  Each
   machine gains at most one extra job of size ``<= T``, giving makespan
   ``<= 2 T* <= 2 C*max``.

The schedule ignores the incompatibility graph by design (like
:func:`repro.scheduling.baselines.unconstrained_lpt` it quantifies the
price of incompatibility); on instances whose graph is empty it is a true
2-approximation.  The returned :class:`LpRoundingResult` also exposes the
LP deadline ``T*``, a *float-accurate* lower bound on the graph-free
optimum used by the benchmark tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.matching import hopcroft_karp
from repro.scheduling.instance import UnrelatedInstance
from repro.scheduling.schedule import Schedule

__all__ = ["LpRoundingResult", "lst_two_approx", "greedy_min_time_schedule"]

_FRACTIONAL_TOL = 1e-7


@dataclass(frozen=True)
class LpRoundingResult:
    """Outcome of the LST 2-approximation.

    Attributes
    ----------
    schedule:
        The rounded schedule (built with ``check=False``: it ignores the
        incompatibility graph, so it may be infeasible for the constrained
        problem — exactly like the paper's unconstrained comparators).
    deadline:
        The smallest LP-feasible deadline ``T*`` found (float precision);
        a lower bound on the graph-free optimum up to search tolerance.
    lp_iterations:
        Number of LP solves performed by the binary search.
    """

    schedule: Schedule
    deadline: float
    lp_iterations: int

    @property
    def certified_ratio(self) -> float:
        """``Cmax / T*`` — by [18] this is at most 2 (+ search tolerance)."""
        if self.deadline == 0:
            return 1.0
        return float(self.schedule.makespan) / self.deadline


def greedy_min_time_schedule(instance: UnrelatedInstance) -> Schedule:
    """Every job on its fastest allowed machine (graph-blind upper bound)."""
    assignment = []
    for j in range(instance.n):
        best_i, best_t = None, None
        for i in range(instance.m):
            t = instance.times[i][j]
            if t is not None and (best_t is None or t < best_t):
                best_i, best_t = i, t
        assignment.append(best_i)
    return Schedule(instance, assignment, check=False)


def _lp_feasible(
    times: list[list[float | None]], n: int, m: int, deadline: float
) -> np.ndarray | None:
    """Solve the deadline-``T`` assignment LP; returns ``x`` or ``None``.

    ``x`` is an ``(m, n)`` array with column sums 1, supported only on
    pairs with ``p_ij <= deadline``, and machine loads ``<= deadline``
    (within solver tolerance).  Minimising total load steers HiGHS to a
    vertex with few fractional entries.
    """
    from scipy.optimize import linprog

    pairs: list[tuple[int, int]] = [
        (i, j)
        for j in range(n)
        for i in range(m)
        if times[i][j] is not None and times[i][j] <= deadline * (1 + 1e-12)
    ]
    if len({j for _, j in pairs}) < n:
        return None  # some job has no machine fast enough
    k = len(pairs)
    cost = np.array([times[i][j] for i, j in pairs])
    # equality: each job's variables sum to 1
    a_eq = np.zeros((n, k))
    for col, (i, j) in enumerate(pairs):
        a_eq[j, col] = 1.0
    b_eq = np.ones(n)
    # inequality: machine loads under the deadline
    a_ub = np.zeros((m, k))
    for col, (i, j) in enumerate(pairs):
        a_ub[i, col] = times[i][j]
    b_ub = np.full(m, deadline)
    res = linprog(
        cost, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=(0, 1), method="highs"
    )
    if not res.success:
        return None
    x = np.zeros((m, n))
    for col, (i, j) in enumerate(pairs):
        x[i, j] = res.x[col]
    return x


def _round_vertex(
    instance: UnrelatedInstance, x: np.ndarray, deadline: float
) -> Schedule:
    """Round a fractional assignment to an integral one (LST rounding).

    Integral jobs keep their machine.  Fractional jobs are matched to
    distinct machines among those they are split across; any job the
    matching misses (only possible away from an exact LP vertex) falls
    back to its largest-share machine.
    """
    m, n = x.shape
    assignment = [-1] * n
    fractional: list[int] = []
    for j in range(n):
        top = int(np.argmax(x[:, j]))
        if x[top, j] >= 1.0 - _FRACTIONAL_TOL:
            assignment[j] = top
        else:
            fractional.append(j)
    if fractional:
        # bipartite matching: fractional jobs (side 0) vs machines (side 1)
        jb_index = {j: idx for idx, j in enumerate(fractional)}
        nf = len(fractional)
        edges = [
            (jb_index[j], nf + i)
            for j in fractional
            for i in range(m)
            if x[i, j] > _FRACTIONAL_TOL
        ]
        helper = BipartiteGraph(
            nf + m, edges, side=[0] * nf + [1] * m
        )
        mate = hopcroft_karp(helper)
        for j in fractional:
            partner = mate[jb_index[j]]
            if partner != -1:
                assignment[j] = partner - nf
            else:  # pragma: no cover - requires a non-vertex LP solution
                assignment[j] = int(np.argmax(x[:, j]))
    return Schedule(instance, assignment, check=False)


def lst_two_approx(
    instance: UnrelatedInstance,
    tolerance: float = 1e-4,
    max_iterations: int = 60,
) -> LpRoundingResult:
    """The [18] 2-approximation for ``R||Cmax`` (graph-blind).

    Binary-searches the smallest LP-feasible deadline to relative
    ``tolerance``, then rounds the final LP vertex.  Raises
    :exc:`InvalidInstanceError` on empty instances with no machines.
    """
    if instance.n == 0:
        return LpRoundingResult(Schedule(instance, []), 0.0, 0)
    times = [
        [None if t is None else float(t) for t in row] for row in instance.times
    ]
    n, m = instance.n, instance.m
    # bounds: max-min job time below, greedy schedule above
    mins = [
        min(times[i][j] for i in range(m) if times[i][j] is not None)
        for j in range(n)
    ]
    lo = max(max(mins), sum(mins) / m)
    greedy = greedy_min_time_schedule(instance)
    hi = float(greedy.makespan)
    if hi == 0:  # all jobs take zero time everywhere they are allowed
        return LpRoundingResult(greedy, 0.0, 0)
    lo = min(lo, hi)
    iterations = 0
    best_x: np.ndarray | None = None
    best_t = hi
    x_hi = _lp_feasible(times, n, m, hi)
    if x_hi is not None:
        best_x, best_t = x_hi, hi
    while hi - lo > tolerance * max(1.0, lo) and iterations < max_iterations:
        mid = (lo + hi) / 2
        x = _lp_feasible(times, n, m, mid)
        iterations += 1
        if x is not None:
            best_x, best_t = x, mid
            hi = mid
        else:
            lo = mid
    if best_x is None:  # pragma: no cover - greedy deadline is always feasible
        raise InvalidInstanceError("LP infeasible even at the greedy deadline")
    schedule = _round_vertex(instance, best_x, best_t)
    return LpRoundingResult(schedule, best_t, iterations + 1)
