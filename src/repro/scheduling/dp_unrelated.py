"""Exact and (1+eps)-approximate solver for ``R2||Cmax``.

The paper uses the Jansen–Porkolab FPTAS [15] as a black box (Theorem 20)
inside Algorithm 5 and Theorem 4.  For two machines the same guarantee is
delivered by a Pareto-state dynamic program with load trimming — see
DESIGN.md §5 for why this substitution is behaviour-preserving:

* state after deciding jobs ``1..j`` = the pair of machine loads
  ``(l1, l2)``;
* for a fixed ``l1``, only the minimal ``l2`` can be optimal (dominance),
  so one state per distinct ``l1`` suffices — *exact* and pseudo-polynomial;
* bucketing ``l1`` on a grid of width ``Delta = eps * UB / (4n)`` keeps
  ``O(n / eps)`` states and loses at most ``n * Delta <= eps/2 * OPT``,
  giving the FPTAS.

Forbidden pairs (``times[i][j] is None``) are honoured natively, which is
how Algorithm 5 pins its two aggregated "private load" jobs to their
machines (the paper encodes the same constraint with a ``2T`` sentinel
processing time).

All arithmetic is integer after an exact rescaling of the rational inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.utils.rationals import as_fraction, floor_fraction, rescale_to_integers

__all__ = ["solve_r2_dp", "DPResult"]

TimeEntry = int | float | str | Fraction | None


@dataclass(frozen=True)
class DPResult:
    """Outcome of the two-machine DP.

    ``assignment[j]`` is 0 or 1 (machine index); ``makespan`` is exact for
    the returned assignment (recomputed from the inputs, so it is a true
    achievable value even in trimmed mode).
    """

    makespan: Fraction
    assignment: tuple[int, ...]


def solve_r2_dp(
    times: Sequence[Sequence[TimeEntry]],
    eps: int | float | Fraction | None = None,
) -> DPResult:
    """Minimise makespan on two unrelated machines.

    Parameters
    ----------
    times:
        Two rows; ``times[i][j]`` is the processing time of job ``j`` on
        machine ``i`` (rational) or ``None`` when forbidden.
    eps:
        ``None`` for the exact pseudo-polynomial DP, else the FPTAS
        accuracy: the result is within ``(1 + eps)`` of optimal.
    """
    if len(times) != 2:
        raise InvalidInstanceError(f"solve_r2_dp needs exactly 2 machines, got {len(times)}")
    n = len(times[0])
    if len(times[1]) != n:
        raise InvalidInstanceError("ragged processing-time matrix")
    if n == 0:
        return DPResult(Fraction(0), ())

    # exact integer rescaling ------------------------------------------------
    finite: list[Fraction] = []
    for row in times:
        for t in row:
            if t is not None:
                f = as_fraction(t)
                if f < 0:
                    raise InvalidInstanceError(f"negative processing time {t}")
                finite.append(f)
    scaled, scale = rescale_to_integers(finite)
    it = iter(scaled)
    t_int: list[list[int | None]] = [[None] * n for _ in range(2)]
    for i in range(2):
        for j in range(n):
            if times[i][j] is not None:
                t_int[i][j] = next(it)

    ub = 0
    for j in range(n):
        a, b = t_int[0][j], t_int[1][j]
        if a is None and b is None:
            raise InvalidInstanceError(f"job {j} forbidden on both machines")
        ub += min(x for x in (a, b) if x is not None)

    if eps is None:
        delta = 1
    else:
        eps_f = as_fraction(eps)
        if eps_f <= 0:
            raise InvalidInstanceError(f"eps must be positive, got {eps}")
        delta = max(1, floor_fraction(eps_f * ub / (4 * n)))
    prune = ub + n * delta

    # forward DP ---------------------------------------------------------
    # flat state arrays; layer maps l1-bucket -> state index
    l1s = [0]
    l2s = [0]
    parent = [-1]
    choice = [-1]
    layer: dict[int, int] = {0: 0}
    for j in range(n):
        a, b = t_int[0][j], t_int[1][j]
        new_layer: dict[int, int] = {}
        for idx in layer.values():
            base1, base2 = l1s[idx], l2s[idx]
            if a is not None:
                nl1 = base1 + a
                if nl1 <= prune:
                    bucket = nl1 // delta
                    at = new_layer.get(bucket)
                    if at is None or base2 < l2s[at]:
                        l1s.append(nl1)
                        l2s.append(base2)
                        parent.append(idx)
                        choice.append(0)
                        new_layer[bucket] = len(l1s) - 1
            if b is not None:
                nl2 = base2 + b
                if nl2 <= prune:
                    bucket = base1 // delta
                    at = new_layer.get(bucket)
                    if at is None or nl2 < l2s[at]:
                        l1s.append(base1)
                        l2s.append(nl2)
                        parent.append(idx)
                        choice.append(1)
                        new_layer[bucket] = len(l1s) - 1
        layer = new_layer
        if not layer:
            # the min-time branch keeps l1 + l2 <= ub <= prune, so an
            # empty layer means the prune bound itself is broken
            raise InfeasibleInstanceError(
                f"R2 DP state space emptied at job {j}: no assignment "
                f"survives the prune bound {prune}"
            )

    best_idx = min(layer.values(), key=lambda s: max(l1s[s], l2s[s]))

    # reconstruct --------------------------------------------------------
    assignment = [0] * n
    idx = best_idx
    for j in range(n - 1, -1, -1):
        assignment[j] = choice[idx]
        idx = parent[idx]

    makespan = Fraction(max(l1s[best_idx], l2s[best_idx]), scale)
    return DPResult(makespan, tuple(assignment))
