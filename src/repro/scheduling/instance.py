"""Scheduling instances for the three machine environments.

The paper's model (Section 1): jobs ``J_1..J_n`` with integer processing
requirements ``p_j``, machines ``M_1..M_m``, and an incompatibility
(conflict) graph on the jobs — any :class:`~repro.graphs.conflict.ConflictGraph`
implementation (bipartite, complete multipartite, block-type, ...).
Instances are immutable; machine speeds are exact rationals sorted
non-increasingly (the paper's convention ``s_1 >= ... >= s_m``).

:class:`UniformInstance` covers both ``Q`` (general speeds) and ``P`` (all
speeds 1), optionally with per-job *machine-eligibility masks* (the CP
``alternative`` + eligibility idiom); :class:`UnrelatedInstance` covers
``R`` including *forbidden* job/machine pairs (processing time ``None``),
which Algorithm 5 uses for its machine-pinned artificial jobs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Iterable, Sequence

from repro.exceptions import InvalidInstanceError
from repro.graphs.conflict import ConflictGraph
from repro.utils.rationals import as_fraction, as_fraction_tuple
from repro.utils.validation import check_positive_ints

__all__ = [
    "SchedulingInstance",
    "UniformInstance",
    "UnrelatedInstance",
    "identical_instance",
    "unit_uniform_instance",
    "make_uniform_instance",
]


class SchedulingInstance(ABC):
    """Common interface: a job set with an incompatibility graph and a
    machine-dependent processing-time oracle."""

    graph: ConflictGraph

    @property
    def n(self) -> int:
        """Number of jobs."""
        return self.graph.n

    @property
    @abstractmethod
    def m(self) -> int:
        """Number of machines."""

    @abstractmethod
    def processing_time(self, machine: int, job: int) -> Fraction | None:
        """Time of ``job`` on ``machine``; ``None`` when forbidden."""

    @abstractmethod
    def machine_completion(self, machine: int, jobs: Iterable[int]) -> Fraction:
        """Completion time of ``machine`` running exactly ``jobs``."""

    @abstractmethod
    def with_graph(self, graph: ConflictGraph) -> "SchedulingInstance":
        """The same instance data under a different graph representation."""

    def allows(self, machine: int, job: int) -> bool:
        """Whether ``job`` may run on ``machine`` at all."""
        return self.processing_time(machine, job) is not None


class UniformInstance(SchedulingInstance):
    """``Q|G|Cmax`` data: integer ``p_j`` and rational machine speeds.

    Speeds must be positive and non-increasing (use
    :func:`make_uniform_instance` to sort arbitrary speed data).  With all
    speeds equal to 1 this is the identical-machine environment ``P``.

    ``eligible`` optionally restricts which machines each job may run on
    (the CP ``alternative`` + eligibility idiom, mirroring
    :class:`UnrelatedInstance`'s forbidden pairs): ``eligible[j]`` is an
    iterable of allowed machine indices, or ``None`` for "any machine".
    Pass ``eligible=None`` (the default) for the unrestricted paper
    model — the fast path is unchanged.
    """

    __slots__ = ("graph", "p", "speeds", "eligible")

    def __init__(
        self,
        graph: ConflictGraph,
        p: Sequence[int],
        speeds: Sequence[int | float | str | Fraction],
        eligible: Sequence[Iterable[int] | None] | None = None,
    ) -> None:
        self.graph = graph
        self.p: tuple[int, ...] = check_positive_ints(p, "p")
        if len(self.p) != graph.n:
            raise InvalidInstanceError(
                f"{len(self.p)} processing requirements for {graph.n} jobs"
            )
        self.speeds: tuple[Fraction, ...] = as_fraction_tuple(speeds)
        if not self.speeds:
            raise InvalidInstanceError("need at least one machine")
        if any(s <= 0 for s in self.speeds):
            raise InvalidInstanceError("speeds must be positive")
        if any(
            self.speeds[i] < self.speeds[i + 1] for i in range(len(self.speeds) - 1)
        ):
            raise InvalidInstanceError(
                "speeds must be non-increasing (s_1 >= ... >= s_m); "
                "use make_uniform_instance() to sort"
            )
        self.eligible: tuple[frozenset[int] | None, ...] | None
        if eligible is None:
            self.eligible = None
        else:
            if len(eligible) != graph.n:
                raise InvalidInstanceError(
                    f"{len(eligible)} eligibility masks for {graph.n} jobs"
                )
            m = len(self.speeds)
            masks: list[frozenset[int] | None] = []
            for j, raw in enumerate(eligible):
                if raw is None:
                    masks.append(None)
                    continue
                mask = frozenset(int(i) for i in raw)
                if not mask:
                    raise InvalidInstanceError(
                        f"job {j} has an empty eligibility mask "
                        "(forbidden on every machine)"
                    )
                bad = [i for i in mask if not 0 <= i < m]
                if bad:
                    raise InvalidInstanceError(
                        f"job {j} eligibility names machine {bad[0]} "
                        f"but there are only {m} machines"
                    )
                # a full mask is the same as no mask; normalise so
                # serialization and equality don't depend on spelling
                masks.append(None if len(mask) == m else mask)
            self.eligible = None if all(x is None for x in masks) else tuple(masks)

    @property
    def m(self) -> int:
        return len(self.speeds)

    @property
    def total_p(self) -> int:
        """``sum p_j`` — the quantity bounding Algorithm 1's ratio."""
        return sum(self.p)

    @property
    def pmax(self) -> int:
        """``max p_j`` (0 when there are no jobs)."""
        return max(self.p, default=0)

    @property
    def is_identical(self) -> bool:
        """Whether all speeds coincide (environment ``P``)."""
        return all(s == self.speeds[0] for s in self.speeds)

    @property
    def has_unit_jobs(self) -> bool:
        """Whether every ``p_j = 1`` (the ``p_j = 1`` restriction)."""
        return all(pj == 1 for pj in self.p)

    @property
    def has_eligibility(self) -> bool:
        """Whether any job carries a machine-eligibility restriction."""
        return self.eligible is not None

    def eligible_machines(self, job: int) -> frozenset[int]:
        """The machines ``job`` may run on (all machines when unmasked)."""
        if self.eligible is not None:
            mask = self.eligible[job]
            if mask is not None:
                return mask
        return frozenset(range(self.m))

    def processing_time(self, machine: int, job: int) -> Fraction | None:
        if self.eligible is not None:
            mask = self.eligible[job]
            if mask is not None and machine not in mask:
                return None
        return Fraction(self.p[job]) / self.speeds[machine]

    def machine_completion(self, machine: int, jobs: Iterable[int]) -> Fraction:
        if self.eligible is not None:
            jobs = list(jobs)
            for j in jobs:
                mask = self.eligible[j]
                if mask is not None and machine not in mask:
                    raise InvalidInstanceError(
                        f"job {j} is not eligible on machine {machine}"
                    )
        load = sum(self.p[j] for j in jobs)
        return Fraction(load) / self.speeds[machine]

    def with_graph(self, graph: ConflictGraph) -> "UniformInstance":
        """The same job/machine data under a different graph representation.

        Used by the engine to hand a *structurally* bipartite instance
        (e.g. a 2-colorable block graph) to an algorithm whose
        implementation needs a concrete
        :class:`~repro.graphs.bipartite.BipartiteGraph` with a side
        witness.  The replacement must describe the same job set.
        """
        if graph.n != self.graph.n:
            raise InvalidInstanceError(
                f"replacement graph has {graph.n} vertices for {self.graph.n} jobs"
            )
        return UniformInstance(graph, self.p, self.speeds, self.eligible)

    def to_unrelated(
        self, machines: Sequence[int] | None = None
    ) -> "UnrelatedInstance":
        """Reinterpret as an ``R`` instance, optionally on a machine subset.

        Used by Algorithm 1 (step 3 hands machines ``M_1, M_2`` to the R2
        FPTAS) and by Theorem 4's prepared instances.  Eligibility masks
        translate to forbidden (``None``) time entries.
        """
        idx = list(range(self.m)) if machines is None else list(machines)
        times = [
            [
                Fraction(self.p[j]) / self.speeds[i]
                if self.allows(i, j)
                else None
                for j in range(self.n)
            ]
            for i in idx
        ]
        return UnrelatedInstance(self.graph, times)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UniformInstance(n={self.n}, m={self.m}, sum_p={self.total_p})"


class UnrelatedInstance(SchedulingInstance):
    """``R|G|Cmax`` data: an ``m x n`` processing-time matrix.

    ``times[i][j]`` is the (rational) time of job ``j`` on machine ``i`` or
    ``None`` when the pair is forbidden (Algorithm 5 pins its two artificial
    load jobs this way).
    """

    __slots__ = ("graph", "times")

    def __init__(
        self,
        graph: ConflictGraph,
        times: Sequence[Sequence[int | float | str | Fraction | None]],
    ) -> None:
        self.graph = graph
        rows: list[tuple[Fraction | None, ...]] = []
        for i, row in enumerate(times):
            if len(row) != graph.n:
                raise InvalidInstanceError(
                    f"times[{i}] has {len(row)} entries for {graph.n} jobs"
                )
            conv: list[Fraction | None] = []
            for j, t in enumerate(row):
                if t is None:
                    conv.append(None)
                else:
                    f = as_fraction(t)
                    if f < 0:
                        raise InvalidInstanceError(
                            f"times[{i}][{j}] must be non-negative, got {t}"
                        )
                    conv.append(f)
            rows.append(tuple(conv))
        if not rows:
            raise InvalidInstanceError("need at least one machine")
        self.times: tuple[tuple[Fraction | None, ...], ...] = tuple(rows)
        for j in range(graph.n):
            if all(self.times[i][j] is None for i in range(len(rows))):
                raise InvalidInstanceError(f"job {j} is forbidden on every machine")

    @property
    def m(self) -> int:
        return len(self.times)

    def with_graph(self, graph: ConflictGraph) -> "UnrelatedInstance":
        """The same time matrix under a different graph representation.

        See :meth:`UniformInstance.with_graph`."""
        if graph.n != self.graph.n:
            raise InvalidInstanceError(
                f"replacement graph has {graph.n} vertices for {self.graph.n} jobs"
            )
        return UnrelatedInstance(graph, self.times)

    def processing_time(self, machine: int, job: int) -> Fraction | None:
        return self.times[machine][job]

    def machine_completion(self, machine: int, jobs: Iterable[int]) -> Fraction:
        total = Fraction(0)
        for j in jobs:
            t = self.times[machine][j]
            if t is None:
                raise InvalidInstanceError(
                    f"job {j} is forbidden on machine {machine}"
                )
            total += t
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"UnrelatedInstance(n={self.n}, m={self.m})"


def identical_instance(graph: ConflictGraph, p: Sequence[int], m: int) -> UniformInstance:
    """A ``P|G=bipartite|Cmax`` instance on ``m`` unit-speed machines."""
    return UniformInstance(graph, p, [Fraction(1)] * m)


def unit_uniform_instance(
    graph: ConflictGraph, speeds: Sequence[int | float | str | Fraction]
) -> UniformInstance:
    """A ``Q|G=bipartite, p_j=1|Cmax`` instance (all jobs unit length)."""
    return UniformInstance(graph, [1] * graph.n, speeds)


def make_uniform_instance(
    graph: ConflictGraph,
    p: Sequence[int],
    speeds: Sequence[int | float | str | Fraction],
) -> UniformInstance:
    """Build a :class:`UniformInstance`, sorting speeds non-increasingly."""
    ordered = sorted(as_fraction_tuple(speeds), reverse=True)
    return UniformInstance(graph, p, ordered)
