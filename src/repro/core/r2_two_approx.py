"""Algorithm 4: the linear-time 2-approximation for ``R2|G=bipartite|Cmax``.

After Algorithm 3's reduction, each remaining decision is a single
artificial job; Algorithm 4 sends every artificial job to the machine where
it is shorter.  The private loads are then incurred regardless, and the
proof of Theorem 21 shows the result is within twice the optimum:
``Cmax <= max(T1, T2) + T_extra`` while every schedule costs at least
``(T1 + T2 + T_extra) / 2``, where ``T1, T2`` are the unavoidable private
loads and ``T_extra`` the (minimal) total of the chosen differences.
"""

from __future__ import annotations

from repro.core.r2_reduction import ComponentCase, reduce_r2
from repro.scheduling.instance import UnrelatedInstance
from repro.scheduling.schedule import Schedule

__all__ = ["r2_two_approx"]


def r2_two_approx(instance: UnrelatedInstance) -> Schedule:
    """2-approximate schedule for ``R2|G = bipartite|Cmax`` in ``O(n)``.

    Ties (equal artificial-job time on both machines) go to machine 1,
    making the output deterministic.
    """
    reduction = reduce_r2(instance)
    orientations: list[int] = []
    for rec in reduction.components:
        if rec.case is ComponentCase.CHOICE:
            d1, d2 = rec.dummy_times
            dummy_machine = 0 if d1 <= d2 else 1
        else:
            dummy_machine = 0  # irrelevant: zero-length dummy
        orientations.append(rec.orientation_for_dummy(dummy_machine))
    return reduction.schedule_from_orientations(orientations)
