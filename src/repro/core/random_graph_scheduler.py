"""Algorithm 2: scheduling unit jobs whose incompatibility graph is a
Gilbert random bipartite graph (Section 4.1, Theorem 19).

The algorithm itself is deterministic and graph-agnostic:

1. take an inequitable 2-coloring ``(V'_1, V'_2)``;
2. compute ``C**max`` — the least time whose rounded-down capacities cover
   all ``n`` unit jobs;
3. find the smallest prefix ``M_2..M_k`` whose capacity reaches
   ``|V'_2| / 2`` (take ``k = m`` if none does);
4. list schedule ``V'_2`` on ``M_2..M_k`` and ``V'_1`` on
   ``M_1, M_{k+1}..M_m``.

Theorem 19: when the graph is drawn from ``G(n, n, p(n))`` (any monotone
regime of ``p``), the makespan is a.a.s. at most ``2 C*max``.  The key
probabilistic facts — ``|V'_2|`` is tiny for sparse graphs (Corollary 11,
Lemma 12) and ``|V'_2| <= 1.6 (n - alpha(G))`` around ``p = a/n``
(Lemmas 13–14) — are reproduced in :mod:`repro.random_graphs`.
"""

from __future__ import annotations

from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs.coloring import inequitable_two_coloring
from repro.scheduling.bounds import min_cover_time
from repro.scheduling.instance import UniformInstance
from repro.scheduling.list_scheduling import schedule_job_classes
from repro.scheduling.schedule import Schedule
from repro.utils.rationals import floor_fraction

__all__ = ["random_graph_schedule", "random_graph_schedule_balanced"]


def random_graph_schedule(instance: UniformInstance) -> Schedule:
    """Run Algorithm 2 on a unit-job uniform instance.

    Raises :exc:`InvalidInstanceError` for non-unit jobs (the paper states
    Algorithm 2 for ``p_j = 1``) and :exc:`InfeasibleInstanceError` when a
    single machine faces an edge.
    """
    if not instance.has_unit_jobs:
        raise InvalidInstanceError("Algorithm 2 requires unit jobs (p_j = 1)")
    n, m = instance.n, instance.m
    if n == 0:
        return Schedule(instance, [])
    if m == 1:
        if instance.graph.edge_count > 0:
            raise InfeasibleInstanceError(
                "a single machine cannot separate incompatible jobs"
            )
        return Schedule(instance, [0] * n)

    class1, class2 = inequitable_two_coloring(instance.graph)

    # step 2: least time whose rounded-down capacities cover all n jobs
    cstar2 = min_cover_time(instance.speeds, n)
    caps = [floor_fraction(s * cstar2) for s in instance.speeds]

    # step 3: least k <= m with capacity(M_2..M_k) >= |V'_2| / 2
    k = m
    prefix = 0
    for i in range(1, m):  # 0-based machine i == 1-based machine i+1
        prefix += caps[i]
        if 2 * prefix >= len(class2):
            k = i + 1
            break

    group_v2 = list(range(1, k))          # M_2 .. M_k
    group_v1 = [0] + list(range(k, m))    # M_1, M_{k+1} .. M_m
    return schedule_job_classes(instance, [(class1, group_v1), (class2, group_v2)])


def random_graph_schedule_balanced(instance: UniformInstance) -> Schedule:
    """Algorithm 2 with the Section 6 isolated-job improvement.

    The paper's open-problems section observes that for ``p(n) = o(1/n)``
    Algorithm 2 "could be improved, by better assigning the isolated jobs
    and using them to balance the schedule": plain Algorithm 2 treats
    isolated vertices as part of ``V'_1`` and so denies them to the
    ``V'_2`` machine group.  This variant

    1. runs Algorithm 2's split only on the *non-isolated* vertices, then
    2. places each isolated job on whichever machine (any group — the
       job conflicts with nothing) finishes it earliest.

    In the sparse regime almost all jobs are isolated, so step 2 degrades
    to plain list scheduling over all machines — asymptotically optimal
    for unit jobs — while the a.a.s. ``2 C*max`` guarantee of Theorem 19
    is kept: the class split is unchanged and step 2 never assigns worse
    than Algorithm 2's choice for the same job.  Experiment E16 measures
    the improvement.
    """
    if not instance.has_unit_jobs:
        raise InvalidInstanceError("Algorithm 2 requires unit jobs (p_j = 1)")
    n, m = instance.n, instance.m
    if n == 0:
        return Schedule(instance, [])
    if m == 1:
        if instance.graph.edge_count > 0:
            raise InfeasibleInstanceError(
                "a single machine cannot separate incompatible jobs"
            )
        return Schedule(instance, [0] * n)

    graph = instance.graph
    isolated = [v for v in range(n) if graph.degree(v) == 0]
    active = [v for v in range(n) if graph.degree(v) > 0]
    sub, ids = graph.induced_subgraph(active)
    c1_local, c2_local = inequitable_two_coloring(sub)
    class1 = [ids[v] for v in c1_local]
    class2 = [ids[v] for v in c2_local]

    cstar2 = min_cover_time(instance.speeds, n)
    caps = [floor_fraction(s * cstar2) for s in instance.speeds]
    k = m
    prefix = 0
    for i in range(1, m):
        prefix += caps[i]
        if 2 * prefix >= len(class2):
            k = i + 1
            break
    group_v2 = list(range(1, k))
    group_v1 = [0] + list(range(k, m))

    assignment = [-1] * n
    loads = [0] * m  # unit jobs: integer loads

    def place(jobs: list[int], machines: list[int]) -> None:
        for j in jobs:
            best = min(
                machines,
                key=lambda i: ((loads[i] + 1) / instance.speeds[i], i),
            )
            assignment[j] = best
            loads[best] += 1

    place(class1, group_v1)
    place(class2, group_v2)
    # isolated jobs conflict with nothing: balance across all machines
    place(isolated, list(range(m)))
    return Schedule(instance, assignment)
