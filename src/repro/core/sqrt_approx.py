"""Algorithm 1: the ``sqrt(sum p_j)``-approximation for ``Q|G=bipartite|Cmax``.

Theorem 9 proves the bound; Theorem 8 shows no ``O(n^{1/2 - eps})`` factor
is achievable, so (for unit jobs, where ``sum p_j = n``) the guarantee is
asymptotically best possible.

Structure, following the paper line by line:

1. ``sum p_j <= 16`` -> brute force (exact).  The paper writes the
   threshold as 4, but its Theorem 9 proof twice argues "in time
   ``4 C**max`` machine ``M_1`` can do more than its proper share",
   which bounds the makespan by ``max(4, sqrt(sum p_j)) * C**max`` —
   equal to the claimed ``sqrt(sum p_j)`` factor only once
   ``sum p_j >= 16``.  (Exhaustive probing at the paper's threshold
   finds genuine counterexamples, e.g. 6 unit jobs with one conflict
   edge on 3 identical machines: Algorithm 1 as written returns 5
   while ``sqrt(6) * C*max ≈ 4.9``.)  Raising the constant-size base
   case to 16 — solved exactly on the ``min(m, n)`` fastest machines —
   restores the stated guarantee without touching the asymptotics.
2. ``I`` = maximum-weight independent set containing every *heavy* job
   (``p_j >= sqrt(sum p_j)``, compared exactly as ``p_j^2 >= sum p_j``);
   ``I`` fails to exist iff the heavy jobs are not pairwise independent.
3. ``S1`` = two-fastest-machines schedule from Algorithm 5 with ``eps = 1``
   (a 2-approximation on ``{M_1, M_2}``).
4. If ``I`` exists (and ``m >= 3`` so a capacity schedule makes sense):
   compute the capacity lower bound ``C**max`` (all machines cover
   ``sum p_j``; machines ``M_2..`` cover ``w(J \\ I)`` — valid because at
   most ``w(I)`` weight can sit on one machine; ``M_1`` covers ``p_max``),
   then cut machines into three groups by rounded-down capacity and list
   schedule:  the heavier inequitable color class ``J'_1`` of ``J \\ I`` on
   ``M_2..M_{k'}``, the lighter class ``J'_2`` on ``M_{k'+1}..M_k`` and
   ``I`` on ``M_1`` plus the leftover slow machines.
5. Return the better of ``S1`` and ``S2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Literal

from repro.core.r2_fptas import r2_fptas
from repro.core.r2_two_approx import r2_two_approx
from repro.exceptions import InfeasibleInstanceError
from repro.graphs.coloring import inequitable_two_coloring
from repro.graphs.independent_set import max_weight_independent_set_containing
from repro.scheduling.bounds import uniform_capacity_lower_bound
from repro.scheduling.brute_force import brute_force_optimal
from repro.scheduling.instance import UniformInstance
from repro.scheduling.list_scheduling import schedule_job_classes
from repro.scheduling.schedule import Schedule
from repro.utils.rationals import floor_fraction

__all__ = ["SqrtApproxResult", "sqrt_approx_schedule", "satisfies_sqrt_guarantee"]


@dataclass(frozen=True)
class SqrtApproxResult:
    """Outcome of Algorithm 1 with its intermediate artefacts exposed.

    ``schedule`` is the returned (better) schedule; ``s1`` / ``s2`` are the
    candidates (``s2`` is ``None`` when no suitable independent set exists
    or ``m < 3``); ``capacity_bound`` is ``C**max`` (``None`` when ``S2``
    was not built); ``chosen`` names the winner.
    """

    schedule: Schedule
    s1: Schedule
    s2: Schedule | None
    capacity_bound: Fraction | None
    chosen: Literal["s1", "s2", "brute_force"]
    independent_set: frozenset[int] | None


def _brute_force_fastest(instance: UniformInstance) -> Schedule:
    """Exact optimum using only the ``min(m, n)`` fastest machines.

    Valid because some optimal schedule never touches more machines than
    jobs, and swapping a used machine for a faster idle one only helps.
    """
    m_eff = min(instance.m, instance.n)
    if m_eff == instance.m:
        return brute_force_optimal(instance)
    sub = UniformInstance(instance.graph, instance.p, instance.speeds[:m_eff])
    best = brute_force_optimal(sub)
    return Schedule(instance, best.assignment)


def _two_fastest_schedule(
    instance: UniformInstance, s1_solver: Literal["fptas", "two_approx"]
) -> Schedule:
    """Schedule everything on ``M_1, M_2`` via Algorithm 5 (eps=1) or Alg. 4."""
    r2 = instance.to_unrelated([0, 1])
    if s1_solver == "fptas":
        two_machine = r2_fptas(r2, eps=1)
    else:
        two_machine = r2_two_approx(r2)
    # machine ids coincide (0 and 1), so the assignment lifts directly
    return Schedule(instance, two_machine.assignment)


def sqrt_approx_schedule(
    instance: UniformInstance,
    s1_solver: Literal["fptas", "two_approx"] = "fptas",
) -> SqrtApproxResult:
    """Run Algorithm 1 and return the schedule plus diagnostics.

    ``s1_solver`` selects how the two-machine candidate ``S1`` is built:
    ``"fptas"`` is the paper's choice (Algorithm 5 with ``eps = 1``);
    ``"two_approx"`` (Algorithm 4) has the identical guarantee at ``O(n)``
    cost and is preferable for very large instances.
    """
    n, m = instance.n, instance.m
    if n == 0:
        empty = Schedule(instance, [])
        return SqrtApproxResult(empty, empty, None, None, "s1", None)
    if m == 1:
        if instance.graph.edge_count > 0:
            raise InfeasibleInstanceError(
                "a single machine cannot separate incompatible jobs"
            )
        all_on_one = Schedule(instance, [0] * n)
        return SqrtApproxResult(all_on_one, all_on_one, None, None, "s1", None)

    total = instance.total_p

    # step 1: small instances exactly (threshold 16, not the paper's 4 —
    # see the module docstring).  Only the min(m, n) fastest machines
    # can matter: moving any machine's whole job set to an unused faster
    # machine never increases the makespan or breaks independence.
    if total <= 16:
        best = _brute_force_fastest(instance)
        return SqrtApproxResult(best, best, None, None, "brute_force", None)

    # step 2: the distinguished independent set
    heavy = [j for j in range(n) if instance.p[j] * instance.p[j] >= total]
    independent = max_weight_independent_set_containing(
        instance.graph, instance.p, heavy
    )

    # step 3: the two-machine candidate
    s1 = _two_fastest_schedule(instance, s1_solver)

    s2: Schedule | None = None
    cap_bound: Fraction | None = None
    if independent is not None and m >= 3 and len(independent) == n:
        # J \ I is empty, i.e. the graph has no edges at all.  The
        # paper's step 7 would still reserve M_2..M_k for the empty
        # rest set and leave them idle (which can breach the Theorem 9
        # bound at small sum p_j); with nothing to separate, step 10's
        # "schedule I on M_1, M_{k+1}..M_m" degenerates to list
        # scheduling on every machine.
        cap_bound = uniform_capacity_lower_bound(instance)
        s2 = schedule_job_classes(
            instance, [(sorted(independent), list(range(m)))]
        )
    elif independent is not None and m >= 3:
        rest = [j for j in range(n) if j not in independent]
        rest_weight = sum(instance.p[j] for j in rest)
        # step 5: C**max — smallest time whose rounded-down capacities
        # satisfy all three covering conditions
        cap_bound = uniform_capacity_lower_bound(instance, rest_weight)
        caps = [floor_fraction(s * cap_bound) for s in instance.speeds]

        # step 7 (1-based k >= 3): M_2..M_k cover J \ I
        prefix = 0
        k = m  # fallback; condition (b) of C** guarantees coverage by M_2..M_m
        for i in range(1, m):  # 0-based machine i is 1-based machine i+1
            prefix += caps[i]
            if prefix >= rest_weight and (i + 1) >= 3:
                k = i + 1
                break

        # step 8: inequitable weighted coloring of J \ I
        sub, ids = instance.graph.induced_subgraph(rest)
        sub_weights = [instance.p[v] for v in ids]
        c1_local, c2_local = inequitable_two_coloring(sub, sub_weights)
        class1 = [ids[v] for v in c1_local]
        class2 = [ids[v] for v in c2_local]
        w_class1 = sum(instance.p[j] for j in class1)

        # step 9 (1-based k' in [2, k]): largest prefix of M_2.. within w(J'_1)
        k_prime = 2
        prefix = 0
        for i in range(1, k):  # 1-based machines 2..k
            prefix += caps[i]
            if prefix <= w_class1:
                k_prime = i + 1
            else:
                break

        # step 10: three machine groups (convert to 0-based ids)
        group_class1 = list(range(1, k_prime))          # M_2 .. M_{k'}
        group_class2 = list(range(k_prime, k))          # M_{k'+1} .. M_k
        group_ind = [0] + list(range(k, m))             # M_1, M_{k+1} .. M_m
        # when J'_2 is non-empty, capacities of M_2..M_k strictly exceed
        # w(J'_1) (they cover all of J \ I), so k' < k and the group exists
        # repro: allow[RS004] reason=Theorem 11 invariant: capacities of M_2..M_k exceed w(J'_1), so k' < k whenever J'_2 is non-empty
        assert not class2 or group_class2, "k' = k with a non-empty J'_2"
        s2 = schedule_job_classes(
            instance,
            [
                (class1, group_class1),
                (class2, group_class2),
                (sorted(independent), group_ind),
            ],
        )

    if s2 is not None and s2.makespan < s1.makespan:
        chosen: Literal["s1", "s2"] = "s2"
        schedule = s2
    else:
        chosen = "s1"
        schedule = s1
    return SqrtApproxResult(
        schedule=schedule,
        s1=s1,
        s2=s2,
        capacity_bound=cap_bound,
        chosen=chosen,
        independent_set=frozenset(independent) if independent is not None else None,
    )


def satisfies_sqrt_guarantee(
    result: SqrtApproxResult,
    optimum: Fraction,
    total_p: int,
) -> bool:
    """Exact check of Theorem 9: ``Cmax <= sqrt(sum p_j) * C*max``.

    Compared without radicals: ``Cmax^2 <= sum p_j * optimum^2``.
    """
    cmax = result.schedule.makespan
    return cmax * cmax <= total_p * optimum * optimum
