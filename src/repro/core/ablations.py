"""Ablation variants of Algorithm 1 (design-choice experiments).

Algorithm 1 makes three non-obvious design choices whose value the paper
argues but never measures:

* **exact max-weight independent set** (step 2, via min-cut) instead of a
  greedy independent set containing the heavy jobs;
* **weighted inequitable coloring** (Definition 1) of ``J \\ I`` instead
  of an arbitrary proper 2-coloring;
* **taking the better of S1 and S2** (step 12) instead of committing to
  the capacity-based schedule whenever it exists.

Each knob can be switched off independently; experiment E11
(``benchmarks/bench_ablation_sqrt.py``) sweeps the variants over the
standard instance suite.  With all knobs at their paper settings the
variant reproduces :func:`repro.core.sqrt_approx.sqrt_approx_schedule`
exactly (asserted by tests).

The ablated algorithms keep Algorithm 1's *feasibility* (every variant
returns a proper schedule); only the quality guarantee degrades.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence

from repro.core.sqrt_approx import _brute_force_fastest, _two_fastest_schedule
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.coloring import inequitable_two_coloring, proper_two_coloring
from repro.graphs.independent_set import max_weight_independent_set_containing
from repro.scheduling.bounds import uniform_capacity_lower_bound
from repro.scheduling.instance import UniformInstance
from repro.scheduling.list_scheduling import schedule_job_classes
from repro.scheduling.schedule import Schedule
from repro.utils.rationals import floor_fraction

__all__ = [
    "ABLATION_VARIANTS",
    "AblationKnobs",
    "greedy_independent_set_containing",
    "sqrt_approx_ablation",
]


@dataclass(frozen=True)
class AblationKnobs:
    """The switchable design choices of Algorithm 1."""

    exact_mwis: bool = True
    weighted_coloring: bool = True
    build_s2: bool = True
    prefer: Literal["min", "s1", "s2"] = "min"


ABLATION_VARIANTS: dict[str, AblationKnobs] = {
    "paper": AblationKnobs(),
    "greedy_mis": AblationKnobs(exact_mwis=False),
    "unweighted_coloring": AblationKnobs(weighted_coloring=False),
    "s1_only": AblationKnobs(build_s2=False, prefer="s1"),
    "s2_preferred": AblationKnobs(prefer="s2"),
}


def greedy_independent_set_containing(
    graph: BipartiteGraph,
    weights: Sequence[int],
    must_contain: Sequence[int],
) -> set[int] | None:
    """Greedy stand-in for step 2's exact max-weight independent set.

    Starts from ``must_contain`` (``None`` if those are not pairwise
    independent — same contract as the exact routine) and greedily adds
    the heaviest remaining non-adjacent vertex.  No optimality: this is
    the ablation comparator, expected to shrink ``w(I)`` and hence
    degrade ``S2``.
    """
    chosen = set(must_contain)
    if not graph.is_independent_set(chosen):
        return None
    blocked = graph.closed_neighborhood(chosen) - chosen
    for v in sorted(range(graph.n), key=lambda v: (-weights[v], v)):
        if v in chosen or v in blocked:
            continue
        chosen.add(v)
        blocked |= graph.neighbors(v)
    return chosen


def _two_coloring_classes(
    graph: BipartiteGraph,
    ids: list[int],
    weights: Sequence[int],
    weighted: bool,
) -> tuple[list[int], list[int]]:
    """Color classes of ``J \\ I``, in original job ids.

    ``weighted=True`` is Definition 1 (heavier class first);
    ``weighted=False`` takes the canonical proper coloring verbatim —
    the ablation drops the "inequitable" guarantee the analysis leans on.
    """
    sub_weights = [weights[v] for v in ids]
    if weighted:
        c1_local, c2_local = inequitable_two_coloring(
            graph, sub_weights
        )
    else:
        colors = proper_two_coloring(graph)
        c1_local = [v for v in range(graph.n) if colors[v] == 0]
        c2_local = [v for v in range(graph.n) if colors[v] == 1]
    return [ids[v] for v in c1_local], [ids[v] for v in c2_local]


def sqrt_approx_ablation(
    instance: UniformInstance,
    variant: str = "paper",
) -> Schedule:
    """Algorithm 1 with one design choice switched off.

    ``variant`` is a key of :data:`ABLATION_VARIANTS`.  The ``"paper"``
    variant is the unmodified algorithm (kept here so ablation sweeps
    have an in-suite control).
    """
    knobs = ABLATION_VARIANTS.get(variant)
    if knobs is None:
        known = ", ".join(sorted(ABLATION_VARIANTS))
        raise InvalidInstanceError(f"unknown variant {variant!r}; known: {known}")
    n, m = instance.n, instance.m
    if n == 0:
        return Schedule(instance, [])
    if m == 1:
        if instance.graph.edge_count > 0:
            raise InfeasibleInstanceError(
                "a single machine cannot separate incompatible jobs"
            )
        return Schedule(instance, [0] * n)

    total = instance.total_p
    if total <= 16:  # same widened base case as repro.core.sqrt_approx
        return _brute_force_fastest(instance)

    heavy = [j for j in range(n) if instance.p[j] * instance.p[j] >= total]
    if knobs.exact_mwis:
        independent = max_weight_independent_set_containing(
            instance.graph, instance.p, heavy
        )
    else:
        independent = greedy_independent_set_containing(
            instance.graph, instance.p, heavy
        )

    s1 = _two_fastest_schedule(instance, "fptas")

    s2: Schedule | None = None
    if knobs.build_s2 and independent is not None and m >= 3:
        s2 = _build_s2(instance, set(independent), knobs)

    if knobs.prefer == "s1" or s2 is None:
        return s1
    if knobs.prefer == "s2":
        return s2
    return s2 if s2.makespan < s1.makespan else s1


def _build_s2(
    instance: UniformInstance, independent: set[int], knobs: AblationKnobs
) -> Schedule:
    """Steps 5-10 of Algorithm 1 with the coloring knob applied."""
    n, m = instance.n, instance.m
    rest = [j for j in range(n) if j not in independent]
    if not rest:
        # edgeless instance: nothing to separate, use every machine
        # (same special case as repro.core.sqrt_approx)
        return schedule_job_classes(
            instance, [(sorted(independent), list(range(m)))]
        )
    rest_weight = sum(instance.p[j] for j in rest)
    cap_bound = uniform_capacity_lower_bound(instance, rest_weight)
    caps = [floor_fraction(s * cap_bound) for s in instance.speeds]

    prefix = 0
    k = m
    for i in range(1, m):
        prefix += caps[i]
        if prefix >= rest_weight and (i + 1) >= 3:
            k = i + 1
            break

    sub, ids = instance.graph.induced_subgraph(rest)
    class1, class2 = _two_coloring_classes(sub, ids, instance.p, knobs.weighted_coloring)
    w_class1 = sum(instance.p[j] for j in class1)

    k_prime = 2
    prefix = 0
    for i in range(1, k):
        prefix += caps[i]
        if prefix <= w_class1:
            k_prime = i + 1
        else:
            break
    if class2 and k_prime >= k:
        # an arbitrary coloring can make J'_1 heavy enough to swallow all
        # of M_2..M_k; keep one machine for J'_2 (k >= 3 so k - 1 >= 2)
        k_prime = k - 1

    group_class1 = list(range(1, k_prime))
    group_class2 = list(range(k_prime, k))
    group_ind = [0] + list(range(k, m))
    return schedule_job_classes(
        instance,
        [
            (class1, group_class1),
            (class2, group_class2),
            (sorted(independent), group_ind),
        ],
    )
