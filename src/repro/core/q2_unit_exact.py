"""Theorem 4: exact polynomial algorithm for ``Q2|G = bipartite, p_j = 1|Cmax``.

The paper derives the result from the R2 FPTAS (Theorem 22): for every job
split ``(n_1, n_2)``, ``n_1 + n_2 = n``, build the R2 instance with
``p_{i,j} = n_1 n_2 / n_i`` on the *same* graph; its optimum equals
``n_1 n_2`` iff machine 1 can receive exactly ``n_1`` jobs, and running the
FPTAS with ``eps = 1/(n+1)`` separates that case exactly (any other split
costs at least a factor ``1 + 1/n`` more).  The best feasible split then
minimises ``max(n_1/s_1, n_2/s_2)``.

A split ``(n_1, n_2)`` is *feasible* iff some orientation choice of the
components puts exactly ``n_1`` vertices on machine 1; this module also
implements that criterion directly via a subset-sum bitset over component
part sizes (:func:`feasible_first_machine_counts`) — an independent exact
method the tests cross-check against the paper's FPTAS-based one.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Literal

from repro.core.r2_fptas import r2_fptas
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.coloring import proper_two_coloring
from repro.graphs.components import connected_components
from repro.scheduling.instance import UniformInstance, UnrelatedInstance
from repro.scheduling.schedule import Schedule

__all__ = ["q2_unit_exact", "feasible_first_machine_counts", "q2_split_cost"]


def feasible_first_machine_counts(graph: BipartiteGraph) -> set[int]:
    """All ``n_1`` for which machine 1 can receive exactly ``n_1`` jobs.

    Each component contributes either its part-A size or its part-B size to
    machine 1 (both machine job sets must be independent, so a component
    sends one full part each way).  The achievable totals are a subset-sum
    over those ``(a_k, b_k)`` pairs, computed with a bitset convolution.
    """
    coloring = proper_two_coloring(graph)
    mask = 1  # bit t set <=> total t achievable
    for comp in connected_components(graph):
        a = sum(1 for v in comp if coloring[v] == 0)
        b = len(comp) - a
        mask = (mask << a) | (mask << b)
    return {t for t in range(graph.n + 1) if (mask >> t) & 1}


def q2_split_cost(n1: int, n2: int, speeds: tuple[Fraction, ...]) -> Fraction:
    """Makespan of the split ``(n_1, n_2)`` of unit jobs on two machines."""
    return max(Fraction(n1) / speeds[0], Fraction(n2) / speeds[1])


def _splits_via_fptas(instance: UniformInstance) -> set[int]:
    """The paper's split-feasibility test through prepared R2 instances."""
    n = instance.n
    graph = instance.graph
    feasible: set[int] = set()
    # trivial splits: all jobs on one machine need the whole job set
    # independent, i.e. an empty graph
    if graph.edge_count == 0:
        feasible.update({0, n})
    for n1 in range(1, n):
        n2 = n - n1
        times = [[n2] * n, [n1] * n]  # p_{i,j} = n1*n2 / n_i
        prepared = UnrelatedInstance(graph, times)
        schedule = r2_fptas(prepared, eps=Fraction(1, n + 1))
        if schedule.makespan == n1 * n2:
            feasible.add(n1)
    return feasible


def q2_unit_exact(
    instance: UniformInstance,
    method: Literal["subset_sum", "fptas"] = "subset_sum",
) -> Schedule:
    """An optimal schedule for ``Q2|G = bipartite, p_j = 1|Cmax``.

    ``method="fptas"`` follows the paper's Theorem 4 construction verbatim
    (one FPTAS call per split, ``eps = 1/(n+1)``); ``method="subset_sum"``
    decides split feasibility directly and is the practical default.  Both
    are exact and the tests assert they agree.
    """
    if instance.m != 2:
        raise InvalidInstanceError(f"Theorem 4 is for exactly 2 machines, got {instance.m}")
    if not instance.has_unit_jobs:
        raise InvalidInstanceError("Theorem 4 requires unit jobs (p_j = 1)")
    n = instance.n
    if n == 0:
        return Schedule(instance, [])

    if method == "subset_sum":
        feasible = feasible_first_machine_counts(instance.graph)
    elif method == "fptas":
        feasible = _splits_via_fptas(instance)
    else:
        raise InvalidInstanceError(f"unknown method {method!r}")

    if instance.graph.edge_count > 0:
        feasible -= {0, n}  # a machine holding everything needs independence
    if not feasible:
        raise InfeasibleInstanceError("no feasible split of jobs between two machines")

    best_n1 = min(feasible, key=lambda n1: (q2_split_cost(n1, n - n1, instance.speeds), n1))

    # reconstruct orientations achieving best_n1 by greedy DP walk
    coloring = proper_two_coloring(instance.graph)
    comps = connected_components(instance.graph)
    sizes = []
    for comp in comps:
        a = sum(1 for v in comp if coloring[v] == 0)
        sizes.append((a, len(comp) - a))
    # prefix achievability masks
    masks = [1]
    for a, b in sizes:
        masks.append((masks[-1] << a) | (masks[-1] << b))
    target = best_n1
    assignment = [0] * n
    for idx in range(len(comps) - 1, -1, -1):
        a, b = sizes[idx]
        prefix = masks[idx]
        if target - a >= 0 and (prefix >> (target - a)) & 1:
            side_to_m1 = 0
            target -= a
        else:
            side_to_m1 = 1
            target -= b
        for v in comps[idx]:
            assignment[v] = 0 if coloring[v] == side_to_m1 else 1
    # repro: allow[RS004] reason=subset-sum DP certified target reachable; reconstruction consuming it exactly is the DP invariant
    assert target == 0, "reconstruction must consume the whole target"
    return Schedule(instance, assignment)
