"""Exact scheduling of unit jobs with complete (multi)partite conflicts.

Related work [20] proves ``Q|G = complete bipartite, p_j = 1|Cmax`` is
NP-hard under *binary* encoding but polynomial under the customary unary
encoding; [24] extends the study to complete multipartite graphs.  This
module implements the unary-encoding exact algorithm:

In a complete multipartite graph any two jobs from different parts
conflict, so **every machine processes jobs from at most one part** (plus
any conflict-free jobs).  An optimal schedule is therefore described by

* an assignment of machines to parts (or to "unused"),
* per-part job counts bounded by the machine capacities
  ``floor(s_i * T)``.

The least feasible ``T`` is found by binary search over the ``O(n m)``
candidate times ``c / s_i`` at which some capacity jumps; feasibility for
a fixed ``T`` is a covering problem solved exactly:

* two parts — subset-sum reachability over capped capacities (bitset),
* ``k >= 3`` parts — dynamic programming over capped covered-amount
  tuples, ``O(m * k * prod(n_t + 1))``: exponential in ``k`` but
  pseudo-polynomial (hence polynomial under unary encoding) for fixed
  ``k``, matching the positive results of [24].

Isolated ("free") jobs are supported: they only consume capacity, so
feasibility additionally requires the total capacity to cover *all* jobs.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs.structure import (
    complete_bipartite_parts_with_free,
    multipartite_decomposition,
)
from repro.scheduling.bounds import min_cover_time
from repro.scheduling.instance import UniformInstance
from repro.scheduling.schedule import Schedule
from repro.utils.rationals import ceil_fraction, floor_fraction

__all__ = [
    "MultipartiteSolution",
    "complete_multipartite_min_time",
    "schedule_complete_bipartite_unit",
    "schedule_complete_multipartite_unit",
]


@dataclass(frozen=True)
class MultipartiteSolution:
    """An optimal machine-to-part plan for unit multipartite conflicts.

    Attributes
    ----------
    makespan:
        The least feasible time ``T`` (exact rational).
    machine_part:
        ``machine_part[i]`` is the part index served by machine ``i`` or
        ``None`` when the machine serves only free jobs (or nothing).
    part_counts:
        ``part_counts[i]`` is the number of *part* jobs machine ``i``
        runs; free jobs are placed on top of these counts greedily.
    free_counts:
        Number of free (isolated) jobs per machine.
    """

    makespan: Fraction
    machine_part: tuple[int | None, ...]
    part_counts: tuple[int, ...]
    free_counts: tuple[int, ...]


def _capacities(speeds: Sequence[Fraction], t: Fraction, cap: int) -> list[int]:
    """Per-machine integer capacities ``min(floor(s_i * t), cap)``.

    Capping at the total job count ``cap`` is lossless for feasibility
    (``sum_i min(c_i, N) >= min(sum_i c_i, N)``) and keeps the subset-sum
    universe pseudo-polynomial.
    """
    return [min(floor_fraction(s * t), cap) for s in speeds]


def _two_part_groups(caps: list[int], n1: int, n2: int) -> list[int | None] | None:
    """Partition machines into two groups covering ``n1`` and ``n2``.

    Returns ``groups`` with entries 0/1 (part index) or ``None`` when
    infeasible.  Subset-sum reachability is computed with per-prefix
    bitsets so membership can be reconstructed by walking backwards.
    """
    total = sum(caps)
    if total < n1 + n2:
        return None
    # prefix[i] = bitset of sums reachable using machines 0..i-1
    prefix: list[int] = [1]
    bits = 1
    for c in caps:
        bits |= bits << c
        prefix.append(bits)
    lo, hi = n1, total - n2
    if lo > hi:
        return None
    target = -1
    probe = prefix[-1] >> lo
    offset = 0
    while probe and lo + offset <= hi:
        if probe & 1:
            target = lo + offset
            break
        shift = (probe & -probe).bit_length() - 1
        probe >>= shift
        offset += shift
    if target == -1:
        return None
    groups: list[int | None] = [1] * len(caps)
    s = target
    for i in range(len(caps) - 1, -1, -1):
        # machine i belongs to group 0 iff s - caps[i] was reachable before
        c = caps[i]
        if c <= s and (prefix[i] >> (s - c)) & 1:
            groups[i] = 0
            s -= c
        # else machine i stays in group 1 and s is unchanged (s must have
        # been reachable without machine i: prefix[i] >> s & 1)
    # repro: allow[RS004] reason=subset-sum reconstruction invariant: prefix masks certified s reachable, so the walk must consume it
    assert s == 0, "subset-sum reconstruction failed"
    return groups


def _k_part_groups(
    caps: list[int], demands: Sequence[int]
) -> list[int | None] | None:
    """Cover ``demands`` by machine groups — exact DP for ``k >= 1`` parts.

    State: tuple of covered amounts, each capped at its demand.  Value:
    back-pointer ``(previous_state, part_chosen)`` per machine layer.
    Machines not helping any part are left unused (``None``).
    """
    k = len(demands)
    total_needed = sum(demands)
    if sum(caps) < total_needed:
        return None
    start = tuple([0] * k)
    goal = tuple(demands)
    # layers[i] maps state -> (prev_state, part or None) after machine i
    layers: list[dict[tuple[int, ...], tuple[tuple[int, ...], int | None]]] = []
    current: dict[tuple[int, ...], tuple[tuple[int, ...], int | None]] = {
        start: (start, None)
    }
    for c in caps:
        nxt: dict[tuple[int, ...], tuple[tuple[int, ...], int | None]] = {}
        for state in current:
            if state not in nxt:
                nxt[state] = (state, None)  # machine unused
            if c == 0:
                continue
            for t in range(k):
                if state[t] == demands[t]:
                    continue
                bumped = list(state)
                bumped[t] = min(demands[t], state[t] + c)
                key = tuple(bumped)
                if key not in nxt:
                    nxt[key] = (state, t)
        layers.append(current)
        current = nxt
    if goal not in current:
        return None
    groups: list[int | None] = [None] * len(caps)
    state = goal
    for i in range(len(caps) - 1, -1, -1):
        # find how state was produced at layer i
        prev, part = current[state]
        groups[i] = part
        state = prev
        current = layers[i]
    return groups


def _feasible_groups(
    caps: list[int], demands: Sequence[int], total_jobs: int
) -> list[int | None] | None:
    """Machine groups covering every demand, or ``None``.

    ``total_jobs`` includes free jobs: the total capacity must cover them
    on top of the part demands (free jobs use any machine's surplus).
    """
    if sum(caps) < total_jobs:
        return None
    k = len(demands)
    if k == 0:
        return [None] * len(caps)
    if k == 1:
        # all capacity may serve the single part; surplus takes free jobs
        if sum(caps) < demands[0]:
            return None
        return [0] * len(caps)
    if k == 2:
        return _two_part_groups(caps, demands[0], demands[1])
    return _k_part_groups(caps, demands)


def complete_multipartite_min_time(
    part_sizes: Sequence[int],
    speeds: Sequence[Fraction],
    free_jobs: int = 0,
) -> MultipartiteSolution:
    """Optimal makespan for unit jobs under complete multipartite conflicts.

    Parameters
    ----------
    part_sizes:
        Number of unit jobs in each part of the complete multipartite
        conflict graph (zero-size parts are dropped).
    speeds:
        Machine speeds, positive rationals in any order (the returned
        plan indexes machines in the order given).
    free_jobs:
        Conflict-free unit jobs that may run anywhere.

    Raises
    ------
    InfeasibleInstanceError
        When there are more non-empty parts than machines.
    """
    demands = [int(s) for s in part_sizes if s > 0]
    if any(s < 0 for s in part_sizes):
        raise InvalidInstanceError("part sizes must be non-negative")
    if free_jobs < 0:
        raise InvalidInstanceError("free job count must be non-negative")
    speeds = list(speeds)
    if not speeds and (demands or free_jobs):
        raise InvalidInstanceError("jobs given but no machines")
    if len(demands) > len(speeds):
        raise InfeasibleInstanceError(
            f"{len(demands)} mutually conflicting parts need at least that "
            f"many machines, got {len(speeds)}"
        )
    total_jobs = sum(demands) + free_jobs
    m = len(speeds)
    if total_jobs == 0:
        return MultipartiteSolution(
            Fraction(0), tuple([None] * m), tuple([0] * m), tuple([0] * m)
        )

    # search window: [cover-everything bound, parts-on-fastest-machines]
    lo = min_cover_time(speeds, total_jobs)
    order = sorted(range(m), key=lambda i: -speeds[i])
    sorted_demands = sorted(demands, reverse=True)
    hi = lo
    for rank, demand in enumerate(sorted_demands):
        hi = max(hi, min_cover_time([speeds[order[rank]]], demand))

    def groups_at(t: Fraction) -> list[int | None] | None:
        return _feasible_groups(_capacities(speeds, t, total_jobs), demands, total_jobs)

    # candidate times where any capacity floor(s_i * t) jumps
    candidates: set[Fraction] = {hi}
    for s in speeds:
        c_lo = max(1, ceil_fraction(s * lo))
        c_hi = floor_fraction(s * hi)
        for c in range(c_lo, c_hi + 1):
            candidates.add(Fraction(c) / s)
    times = sorted(t for t in candidates if lo <= t <= hi)
    left, right = 0, len(times) - 1
    best_t = times[right]
    best_groups = groups_at(best_t)
    # repro: allow[RS004] reason=binary-search invariant: times[right] is the proven-feasible upper bound
    assert best_groups is not None, "upper bound must be feasible"
    while left <= right:
        mid = (left + right) // 2
        g = groups_at(times[mid])
        if g is not None:
            best_t, best_groups = times[mid], g
            right = mid - 1
        else:
            left = mid + 1

    # realise job counts at best_t
    caps = _capacities(speeds, best_t, total_jobs)
    part_counts = [0] * m
    remaining = list(demands)
    for i in range(m):
        t = best_groups[i]
        if t is not None:
            take = min(caps[i], remaining[t])
            part_counts[i] = take
            remaining[t] -= take
    # repro: allow[RS004] reason=feasibility test already certified the grouping covers every part's demand
    assert all(r == 0 for r in remaining), "groups failed to cover demands"
    free_counts = [0] * m
    left_free = free_jobs
    for i in range(m):
        spare = caps[i] - part_counts[i]
        take = min(spare, left_free)
        free_counts[i] = take
        left_free -= take
    # repro: allow[RS004] reason=feasibility test already certified total capacity covers part plus free demand
    assert left_free == 0, "total capacity failed to cover free jobs"
    return MultipartiteSolution(
        best_t, tuple(best_groups), tuple(part_counts), tuple(free_counts)
    )


def schedule_complete_bipartite_unit(instance: UniformInstance) -> Schedule:
    """Exact schedule for ``Q|G = complete bipartite (+isolated), p_j=1|Cmax``.

    Recognises the instance graph as a complete bipartite core plus
    isolated vertices and solves it exactly with
    :func:`complete_multipartite_min_time`.  Raises
    :exc:`InvalidInstanceError` when the jobs are not unit or the graph is
    not of this shape (use Algorithm 1 for general bipartite graphs).
    """
    if not instance.has_unit_jobs:
        raise InvalidInstanceError(
            "the exact multipartite algorithm needs unit jobs (p_j = 1)"
        )
    decomposition = complete_bipartite_parts_with_free(instance.graph)
    if decomposition is None:
        raise InvalidInstanceError(
            "graph is not complete bipartite plus isolated vertices"
        )
    left, right, free = decomposition
    solution = complete_multipartite_min_time(
        [len(left), len(right)], instance.speeds, free_jobs=len(free)
    )
    # map the count plan back to concrete job ids
    pools = [list(left), list(right)]
    assignment = [-1] * instance.n
    for i in range(instance.m):
        part = solution.machine_part[i]
        if part is not None:
            for _ in range(solution.part_counts[i]):
                assignment[pools[part].pop()] = i
    free_pool = list(free)
    for i in range(instance.m):
        for _ in range(solution.free_counts[i]):
            assignment[free_pool.pop()] = i
    # repro: allow[RS004] reason=counts invariant: part_counts/free_counts sum to the pool sizes by construction
    assert not pools[0] and not pools[1] and not free_pool
    return Schedule(instance, assignment)


def schedule_complete_multipartite_unit(instance: UniformInstance) -> Schedule:
    """Exact schedule for ``Q|G = complete multipartite (+isolated), p_j=1|Cmax``.

    The ``k``-class generalization of
    :func:`schedule_complete_bipartite_unit` (Pikies–Turowski,
    arXiv:2010.13207): recognises the instance graph as structurally
    complete multipartite — regardless of which
    :class:`~repro.graphs.conflict.ConflictGraph` representation stores
    it — and solves exactly with
    :func:`complete_multipartite_min_time`.  Raises
    :exc:`InvalidInstanceError` when the jobs are not unit, the graph is
    not complete multipartite, or the instance carries machine-eligibility
    masks (the unary algorithm's capacity argument assumes every machine
    may take every job).
    """
    if not instance.has_unit_jobs:
        raise InvalidInstanceError(
            "the exact multipartite algorithm needs unit jobs (p_j = 1)"
        )
    if instance.has_eligibility:
        raise InvalidInstanceError(
            "the exact multipartite algorithm does not support "
            "machine-eligibility masks"
        )
    decomposition = multipartite_decomposition(instance.graph)
    if decomposition is None:
        raise InvalidInstanceError(
            "graph is not complete multipartite plus isolated vertices"
        )
    classes, free = decomposition
    solution = complete_multipartite_min_time(
        [len(c) for c in classes], instance.speeds, free_jobs=len(free)
    )
    pools = [list(c) for c in classes]
    assignment = [-1] * instance.n
    for i in range(instance.m):
        part = solution.machine_part[i]
        if part is not None:
            for _ in range(solution.part_counts[i]):
                assignment[pools[part].pop()] = i
    free_pool = list(free)
    for i in range(instance.m):
        for _ in range(solution.free_counts[i]):
            assignment[free_pool.pop()] = i
    # repro: allow[RS004] reason=counts invariant: the solution's counts sum to the pool sizes by construction
    assert not any(pools) and not free_pool
    return Schedule(instance, assignment)
