"""Algorithm 3: component reduction for ``R2|G = bipartite|Cmax``.

For every connected component ``G_k`` with parts ``(V^k_1, V^k_2)`` only two
assignments exist: *straight* (part 1 on ``M_1``, part 2 on ``M_2``) with
machine loads ``(p*_{1,1}, p*_{2,2})``, or *flipped* with loads
``(p*_{1,2}, p*_{2,1})``, where ``p*_{i,l}`` is the total time of part ``l``
on machine ``i``.  Algorithm 3 classifies each component:

* one orientation dominates the other coordinate-wise -> its loads are
  folded into the per-machine "private loads" ``P'`` / ``P''`` and the
  component's artificial job has zero length (cases A and B);
* otherwise the orientation is a genuine binary choice -> the minimum loads
  are folded into ``P'`` / ``P''`` and the *differences* become the two
  processing times of the component's artificial job (case C).

The reduction is exact: schedules of the reduced instance (artificial jobs
on two machines plus the private loads) correspond 1-1, makespan-preserving,
to schedules of the original instance — this is the content of the proof of
Theorem 21.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Sequence

from repro.exceptions import InvalidInstanceError
from repro.graphs.components import connected_components
from repro.graphs.coloring import proper_two_coloring
from repro.scheduling.instance import UnrelatedInstance
from repro.scheduling.schedule import Schedule

__all__ = ["ComponentCase", "ComponentRecord", "R2Reduction", "reduce_r2"]


class ComponentCase(Enum):
    """Which branch of Algorithm 3's case analysis applied."""

    STRAIGHT_DOMINATES = "straight"  # p*11 <= p*12 and p*22 <= p*21
    FLIPPED_DOMINATES = "flipped"    # p*12 <= p*11 and p*21 <= p*22
    CHOICE = "choice"                # neither dominates: real binary decision


@dataclass(frozen=True)
class ComponentRecord:
    """One connected component after reduction.

    ``part1`` / ``part2`` hold original job ids; ``loads[0]`` are the
    straight loads ``(p*_{1,1}, p*_{2,2})`` and ``loads[1]`` the flipped
    loads ``(p*_{1,2}, p*_{2,1})``.  ``dummy_times`` is the artificial
    job's processing time on each machine and ``base_loads`` the
    contribution to ``(P'_k, P''_k)``.
    """

    part1: tuple[int, ...]
    part2: tuple[int, ...]
    loads: tuple[tuple[Fraction, Fraction], tuple[Fraction, Fraction]]
    case: ComponentCase
    dummy_times: tuple[Fraction, Fraction]
    base_loads: tuple[Fraction, Fraction]

    def orientation_for_dummy(self, dummy_machine: int) -> int:
        """Map the artificial job's machine to an orientation.

        Returns 0 (straight) or 1 (flipped).  For dominated cases the
        orientation is fixed regardless of where a zero-length dummy sits.
        In the choice case, putting the dummy on machine ``i`` means
        machine ``i`` carries its larger of the two possible part loads
        (see the reconstruction paragraph of Theorem 21's proof).
        """
        if self.case is ComponentCase.STRAIGHT_DOMINATES:
            return 0
        if self.case is ComponentCase.FLIPPED_DOMINATES:
            return 1
        (p11, p22), (p12, p21) = self.loads
        if dummy_machine == 0:
            # machine 1 takes max(p*_{1,1}, p*_{1,2})
            return 0 if p11 >= p12 else 1
        # machine 2 takes max(p*_{2,1}, p*_{2,2}); straight puts p22 there
        return 0 if p22 > p21 else 1


@dataclass(frozen=True)
class R2Reduction:
    """Output of Algorithm 3 for a full instance."""

    instance: UnrelatedInstance
    components: tuple[ComponentRecord, ...]

    @property
    def private_load_m1(self) -> Fraction:
        """``sum_k P'_k`` — work machine 1 carries in *every* schedule."""
        return sum((c.base_loads[0] for c in self.components), Fraction(0))

    @property
    def private_load_m2(self) -> Fraction:
        """``sum_k P''_k`` — work machine 2 carries in *every* schedule."""
        return sum((c.base_loads[1] for c in self.components), Fraction(0))

    def dummy_matrix(self) -> list[list[Fraction]]:
        """Processing times of the artificial jobs (2 x #components)."""
        return [
            [c.dummy_times[0] for c in self.components],
            [c.dummy_times[1] for c in self.components],
        ]

    def schedule_from_orientations(self, orientations: Sequence[int]) -> Schedule:
        """Expand per-component orientations back to a full job schedule."""
        if len(orientations) != len(self.components):
            raise InvalidInstanceError(
                f"{len(orientations)} orientations for {len(self.components)} components"
            )
        assignment = [0] * self.instance.n
        for rec, orient in zip(self.components, orientations):
            if orient not in (0, 1):
                raise InvalidInstanceError(f"orientation must be 0 or 1, got {orient}")
            m_part1 = 0 if orient == 0 else 1
            for j in rec.part1:
                assignment[j] = m_part1
            for j in rec.part2:
                assignment[j] = 1 - m_part1
        return Schedule(self.instance, assignment)


def reduce_r2(instance: UnrelatedInstance) -> R2Reduction:
    """Algorithm 3: merge each component into one artificial job.

    Requires exactly two machines and a fully finite time matrix (the
    paper's R2 model has no forbidden pairs; Algorithm 5 adds pinned jobs
    *after* this reduction).
    """
    if instance.m != 2:
        raise InvalidInstanceError(f"Algorithm 3 needs exactly 2 machines, got {instance.m}")
    for i in range(2):
        for j in range(instance.n):
            if instance.times[i][j] is None:
                raise InvalidInstanceError(
                    f"Algorithm 3 requires finite processing times; "
                    f"times[{i}][{j}] is forbidden"
                )
    coloring = proper_two_coloring(instance.graph)
    records: list[ComponentRecord] = []
    for comp in connected_components(instance.graph):
        part1 = tuple(j for j in comp if coloring[j] == 0)
        part2 = tuple(j for j in comp if coloring[j] == 1)
        p11 = sum((instance.times[0][j] for j in part1), Fraction(0))
        p21 = sum((instance.times[1][j] for j in part1), Fraction(0))
        p12 = sum((instance.times[0][j] for j in part2), Fraction(0))
        p22 = sum((instance.times[1][j] for j in part2), Fraction(0))
        loads = ((p11, p22), (p12, p21))
        if p11 <= p12 and p22 <= p21:
            case = ComponentCase.STRAIGHT_DOMINATES
            dummy = (Fraction(0), Fraction(0))
            base = (p11, p22)
        elif p12 <= p11 and p21 <= p22:
            case = ComponentCase.FLIPPED_DOMINATES
            dummy = (Fraction(0), Fraction(0))
            base = (p12, p21)
        else:
            case = ComponentCase.CHOICE
            dummy = (
                max(p11, p12) - min(p11, p12),
                max(p21, p22) - min(p21, p22),
            )
            base = (min(p11, p12), min(p21, p22))
        records.append(
            ComponentRecord(
                part1=part1,
                part2=part2,
                loads=loads,
                case=case,
                dummy_times=dummy,
                base_loads=base,
            )
        )
    return R2Reduction(instance=instance, components=tuple(records))
