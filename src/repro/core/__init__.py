"""The paper's primary contributions.

* :mod:`repro.core.sqrt_approx` — Algorithm 1, the ``sqrt(sum p_j)``-
  approximation for ``Q|G = bipartite|Cmax`` (Theorem 9, Lemma 10).
* :mod:`repro.core.random_graph_scheduler` — Algorithm 2, a.a.s.
  2-approximate on Gilbert random bipartite graphs (Theorem 19).
* :mod:`repro.core.r2_reduction` — Algorithm 3, per-component job merging
  for two unrelated machines.
* :mod:`repro.core.r2_two_approx` — Algorithm 4, the linear-time
  2-approximation for ``R2|G = bipartite|Cmax`` (Theorem 21).
* :mod:`repro.core.r2_fptas` — Algorithm 5, the FPTAS for
  ``R2|G = bipartite|Cmax`` (Theorem 22).
* :mod:`repro.core.q2_unit_exact` — Theorem 4, the polynomial exact
  algorithm for ``Q2|G = bipartite, p_j = 1|Cmax``.
"""

from repro.core.r2_reduction import ComponentRecord, R2Reduction, reduce_r2
from repro.core.r2_two_approx import r2_two_approx
from repro.core.r2_fptas import r2_fptas
from repro.core.q2_unit_exact import (
    q2_unit_exact,
    feasible_first_machine_counts,
    q2_split_cost,
)
from repro.core.sqrt_approx import (
    SqrtApproxResult,
    sqrt_approx_schedule,
    satisfies_sqrt_guarantee,
)
from repro.core.random_graph_scheduler import (
    random_graph_schedule,
    random_graph_schedule_balanced,
)
from repro.core.complete_multipartite import (
    MultipartiteSolution,
    complete_multipartite_min_time,
    schedule_complete_bipartite_unit,
)
from repro.core.ablations import (
    ABLATION_VARIANTS,
    AblationKnobs,
    sqrt_approx_ablation,
)

__all__ = [
    "ComponentRecord",
    "R2Reduction",
    "reduce_r2",
    "r2_two_approx",
    "r2_fptas",
    "q2_unit_exact",
    "feasible_first_machine_counts",
    "q2_split_cost",
    "SqrtApproxResult",
    "sqrt_approx_schedule",
    "satisfies_sqrt_guarantee",
    "random_graph_schedule",
    "random_graph_schedule_balanced",
    "MultipartiteSolution",
    "complete_multipartite_min_time",
    "schedule_complete_bipartite_unit",
    "ABLATION_VARIANTS",
    "AblationKnobs",
    "sqrt_approx_ablation",
]
