"""Algorithm 5: FPTAS for ``R2|G = bipartite|Cmax`` (Theorem 22).

Pipeline:

1. run Algorithm 4 to obtain a 2-approximate makespan ``T`` (the paper uses
   ``T`` to build "unreasonable" sentinel processing times ``2T``/``3T``);
2. run Algorithm 3 to reduce the graph instance to artificial jobs plus
   per-machine private loads ``P'``, ``P''``;
3. append two aggregated *private load jobs*: one of length ``sum P'``
   runnable only on machine 1 and one of length ``sum P''`` runnable only
   on machine 2.  The paper pins them via the ``2T`` sentinel; our
   ``Rm||Cmax`` engine (:func:`repro.scheduling.dp_unrelated.solve_r2_dp`)
   supports forbidden pairs natively, so the pin is expressed directly —
   the sentinel trick remains available through ``use_sentinel_times=True``
   for fidelity experiments;
4. solve the graph-free two-machine instance with the ``(1 + eps)`` engine
   (the paper's Jansen–Porkolab black box, see DESIGN.md §5);
5. map each artificial job's machine back to its component's orientation
   and expand to a full schedule.

Every schedule of the reduced instance corresponds makespan-for-makespan
to one of the original instance and vice versa, so the ``(1 + eps)``
guarantee transfers verbatim.
"""

from __future__ import annotations

from fractions import Fraction

from repro.core.r2_reduction import reduce_r2
from repro.core.r2_two_approx import r2_two_approx
from repro.exceptions import InvalidInstanceError
from repro.scheduling.dp_unrelated import solve_r2_dp
from repro.scheduling.instance import UnrelatedInstance
from repro.scheduling.schedule import Schedule
from repro.utils.rationals import as_fraction

__all__ = ["r2_fptas"]


def r2_fptas(
    instance: UnrelatedInstance,
    eps: int | float | Fraction = 1,
    use_sentinel_times: bool = False,
) -> Schedule:
    """A ``(1 + eps)``-approximate schedule for ``R2|G = bipartite|Cmax``.

    ``eps = 1`` reproduces the configuration Algorithm 1 uses for its
    two-machine schedule ``S1``.  With ``use_sentinel_times`` the private
    load jobs get the paper's literal ``2T`` processing time on the wrong
    machine instead of being forbidden there (both must yield the same
    guarantee; tests assert they agree).
    """
    eps_f = as_fraction(eps)
    if eps_f <= 0:
        raise InvalidInstanceError(f"eps must be positive, got {eps}")
    if instance.n == 0:
        return Schedule(instance, [])

    reduction = reduce_r2(instance)
    rows = reduction.dummy_matrix()
    p_m1 = reduction.private_load_m1
    p_m2 = reduction.private_load_m2

    if use_sentinel_times:
        t_2approx = r2_two_approx(instance).makespan
        sentinel = 2 * t_2approx if t_2approx > 0 else Fraction(1)
        rows[0].extend([p_m1, sentinel])
        rows[1].extend([sentinel, p_m2])
    else:
        rows[0].extend([p_m1, None])
        rows[1].extend([None, p_m2])

    result = solve_r2_dp(rows, eps=eps_f)

    c = len(reduction.components)
    # sanity: the pinned jobs must have stayed on their machines (always
    # true with forbidden pairs; with sentinel times it holds because any
    # schedule violating a pin costs >= 2T >= (1+eps) * OPT for eps <= 1,
    # and the engine returns a strictly better one)
    if result.assignment[c] != 0 or result.assignment[c + 1] != 1:
        raise InvalidInstanceError(
            "private load job left its machine; sentinel too small for this eps"
        )
    orientations = [
        rec.orientation_for_dummy(result.assignment[k])
        for k, rec in enumerate(reduction.components)
    ]
    return reduction.schedule_from_orientations(orientations)
