"""cProfile wrapper: top-N hotspot extraction as structured data.

``repro perf --profile`` and the optimization workflow documented in
``docs/PERFORMANCE.md`` both need "where does the time go" as *data*,
not as a wall of ``pstats`` text: :func:`profile_top` runs a callable
under :mod:`cProfile` and returns the top-N lines by cumulative time as
:class:`ProfileLine` records, renderable with :meth:`ProfileReport.table`.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from typing import Any, Callable

from repro.exceptions import InvalidInstanceError

__all__ = ["ProfileLine", "ProfileReport", "profile_top"]


@dataclass(frozen=True)
class ProfileLine:
    """One profiled function: location, call counts, and times."""

    function: str
    ncalls: int
    tottime_s: float
    cumtime_s: float


@dataclass(frozen=True)
class ProfileReport:
    """Top-N profile of one call.

    Parameters
    ----------
    label:
        Name of the profiled callable.
    total_time_s:
        Total profiled time (sum of ``tottime`` over all functions).
    lines:
        The top-N entries, sorted by cumulative time, descending.
    value:
        The profiled callable's return value.
    """

    label: str
    total_time_s: float
    lines: tuple[ProfileLine, ...]
    value: Any

    def table(self, title: str | None = None) -> str:
        """Render the hotspots as an aligned monospace table."""
        from repro.analysis.tables import format_table

        rows = [
            [line.function, line.ncalls, line.tottime_s * 1e3, line.cumtime_s * 1e3]
            for line in self.lines
        ]
        return format_table(
            ["function", "ncalls", "tottime (ms)", "cumtime (ms)"],
            rows,
            title=title or f"profile: {self.label} ({self.total_time_s * 1e3:.1f} ms total)",
        )


def _line_name(func: tuple[str, int, str]) -> str:
    filename, lineno, name = func
    if filename == "~":
        return name  # builtins
    short = filename.rsplit("/", 1)[-1]
    return f"{short}:{lineno}:{name}"


def profile_top(
    fn: Callable[..., Any],
    *args: Any,
    top: int = 10,
    label: str | None = None,
    **kwargs: Any,
) -> ProfileReport:
    """Profile one call of ``fn(*args, **kwargs)``; keep the top-N lines.

    Parameters
    ----------
    fn:
        The callable to profile.
    *args, **kwargs:
        Forwarded to ``fn``.
    top:
        How many lines to keep (by cumulative time, must be >= 1).
    label:
        Report label; defaults to ``fn.__name__``.

    Returns
    -------
    ProfileReport
        Structured hotspots plus the call's return value.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        If ``top < 1``.
    """
    if top < 1:
        raise InvalidInstanceError(f"top must be >= 1, got {top}")
    profiler = cProfile.Profile()
    value = profiler.runcall(fn, *args, **kwargs)
    stats = pstats.Stats(profiler)
    entries = []
    total = 0.0
    for func, (cc, nc, tottime, cumtime, _callers) in stats.stats.items():  # type: ignore[attr-defined]
        total += tottime
        entries.append(
            ProfileLine(
                function=_line_name(func),
                ncalls=int(nc),
                tottime_s=float(tottime),
                cumtime_s=float(cumtime),
            )
        )
    entries.sort(key=lambda line: (-line.cumtime_s, line.function))
    return ProfileReport(
        label=label or getattr(fn, "__name__", "callable"),
        total_time_s=total,
        lines=tuple(entries[:top]),
        value=value,
    )
