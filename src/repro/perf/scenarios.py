"""Named perf scenarios: the measured hot paths behind ``repro perf``.

Each scenario builds a deterministic workload sweep, times the optimized
hot path against its preserved pre-optimization reference
(:mod:`repro.perf.baselines`) under the warmup/repeat/median policy of
:mod:`repro.perf.timer`, asserts result equivalence along the way, and
returns the before/after table as a schema-valid
:class:`~repro.perf.record.BenchRecord` (experiment ids
``PERF_<target>``).  ``docs/PERFORMANCE.md`` reproduces these tables;
CI runs the ``smoke`` shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.exceptions import InvalidInstanceError
from repro.perf.baselines import (
    assign_group_greedy_baseline,
    certified_optimal_baseline,
    hopcroft_karp_baseline,
)
from repro.perf.record import BenchPhase, BenchRecord
from repro.perf.timer import TimingResult, measure

__all__ = ["ScenarioOutcome", "SCENARIO_NAMES", "run_scenario"]


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario's measured sweep.

    Parameters
    ----------
    record:
        The before/after table and phase timings, ready to persist as
        ``BENCH_PERF_<target>.json``.
    profile_fn:
        Zero-argument callable exercising the scenario's largest
        optimized case (the ``repro perf --profile`` target).
    """

    record: BenchRecord
    profile_fn: Callable[[], Any]


def _speedup_row(
    case: str,
    before: TimingResult,
    after: TimingResult,
    extra: dict[str, Any] | None = None,
) -> tuple[list[Any], list[BenchPhase]]:
    """A ``[case, baseline ms, optimized ms, speedup]`` row + its phases."""
    row: list[Any] = [
        case,
        before.median_s * 1e3,
        after.median_s * 1e3,
        before.median_s / after.median_s if after.median_s > 0 else float("inf"),
    ]
    size = dict(extra or {})
    phases = [
        before.to_phase(name=f"baseline:{case}", size=size),
        after.to_phase(name=f"optimized:{case}", size=size),
    ]
    return row, phases


_COLUMNS = ["case", "baseline (ms)", "optimized (ms)", "speedup"]


def _scenario_hopcroft_karp(repeat: int, warmup: int, smoke: bool) -> ScenarioOutcome:
    """Hopcroft–Karp: iterative DFS + adjacency reuse vs recursion."""
    from repro.graphs.matching import hopcroft_karp, is_matching
    from repro.random_graphs.gilbert import gnnp

    cases = (
        [(100, 3.0), (200, 3.0)]
        if smoke
        else [(200, 3.0), (400, 20.0), (800, 8.0), (1600, 3.0), (1600, 8.0)]
    )
    rows: list[list[Any]] = []
    phases: list[BenchPhase] = []
    largest = None
    for n_side, degree in cases:
        graph = gnnp(n_side, min(1.0, degree / n_side), seed=7)
        before = measure(
            hopcroft_karp_baseline, graph, repeat=repeat, warmup=warmup
        )
        after = measure(hopcroft_karp, graph, repeat=repeat, warmup=warmup)
        mu_before = sum(1 for v in before.value if v != -1) // 2
        mu_after = sum(1 for v in after.value if v != -1) // 2
        if mu_before != mu_after or not is_matching(graph, after.value):
            raise InvalidInstanceError(
                f"hopcroft_karp equivalence broke on n_side={n_side}: "
                f"mu {mu_before} vs {mu_after}"
            )
        case = f"G({n_side},{n_side},{degree}/n) |E|={graph.edge_count}"
        row, case_phases = _speedup_row(
            case, before, after, {"n": graph.n, "edges": graph.edge_count}
        )
        row.append(mu_after)
        rows.append(row)
        phases.extend(case_phases)
        largest = graph
    return ScenarioOutcome(
        record=BenchRecord.build(
            "PERF_hopcroft_karp",
            [*_COLUMNS, "mu"],
            rows,
            phases=phases,
            notes="iterative-DFS + adjacency-reuse Hopcroft-Karp vs the "
            "recursive reference (repro.perf.baselines); medians of "
            f"repeat={repeat} after warmup={warmup}",
        ),
        profile_fn=lambda: hopcroft_karp(largest),
    )


def _scenario_list_scheduling(repeat: int, warmup: int, smoke: bool) -> ScenarioOutcome:
    """Greedy list scheduling: speed-grouped load heaps vs O(n*m) scan."""
    from repro.graphs.generators import empty_graph
    from repro.machines.profiles import power_law_speeds
    from repro.scheduling.instance import UniformInstance
    from repro.scheduling.list_scheduling import assign_group_greedy

    cases = [(200, 16)] if smoke else [(1000, 64), (2000, 200)]
    rows: list[list[Any]] = []
    phases: list[BenchPhase] = []
    largest: tuple[Any, list[int], list[int]] | None = None
    rng = np.random.default_rng(3)
    for n, m in cases:
        graph = empty_graph(n)
        p = [int(x) for x in rng.integers(1, 20, n)]
        instance = UniformInstance(graph, p, power_law_speeds(m))
        jobs = list(range(n))
        machines = list(range(m))
        before = measure(
            assign_group_greedy_baseline,
            instance,
            jobs,
            machines,
            repeat=repeat,
            warmup=warmup,
        )
        after = measure(
            assign_group_greedy, instance, jobs, machines, repeat=repeat, warmup=warmup
        )
        if before.value != after.value:
            raise InvalidInstanceError(
                f"assign_group_greedy equivalence broke on n={n}, m={m}"
            )
        row, case_phases = _speedup_row(
            f"n={n} m={m}", before, after, {"n": n, "m": m}
        )
        rows.append(row)
        phases.extend(case_phases)
        largest = (instance, jobs, machines)
    return ScenarioOutcome(
        record=BenchRecord.build(
            "PERF_list_scheduling",
            _COLUMNS,
            rows,
            phases=phases,
            notes="speed-grouped load heaps vs the O(n*m) reference scan; "
            f"medians of repeat={repeat} after warmup={warmup}",
        ),
        profile_fn=lambda: assign_group_greedy(*largest),
    )


def _scenario_oracle(repeat: int, warmup: int, smoke: bool) -> ScenarioOutcome:
    """Exact oracle: memoized bounds/eligibility vs per-node recomputation."""
    from repro.certify.oracle import certified_optimal
    from repro.machines.profiles import geometric_speeds
    from repro.random_graphs.gilbert import gnnp
    from repro.scheduling.instance import UniformInstance, UnrelatedInstance

    rng = np.random.default_rng(5)
    instances: list[tuple[str, Any]] = []
    for n_side, m in [(6, 3)] if smoke else [(6, 3), (7, 3)]:
        graph = gnnp(n_side, 0.3, seed=9)
        p = [int(x) for x in rng.integers(1, 9, graph.n)]
        instances.append(
            (f"Q n={graph.n} m={m}", UniformInstance(graph, p, geometric_speeds(m, 2)))
        )
    for n_side, m in [] if smoke else [(5, 3), (6, 3)]:
        graph = gnnp(n_side, 0.3, seed=13)
        times = [[int(x) for x in rng.integers(1, 15, graph.n)] for _ in range(m)]
        instances.append((f"R n={graph.n} m={m}", UnrelatedInstance(graph, times)))
    rows: list[list[Any]] = []
    phases: list[BenchPhase] = []
    largest = instances[-1][1]
    for case, instance in instances:
        before = measure(
            certified_optimal_baseline, instance, repeat=repeat, warmup=warmup
        )
        after = measure(certified_optimal, instance, repeat=repeat, warmup=warmup)
        if (
            before.value.makespan != after.value.makespan
            or before.value.nodes != after.value.nodes
        ):
            raise InvalidInstanceError(
                f"oracle equivalence broke on {case}: "
                f"({before.value.makespan}, {before.value.nodes}) vs "
                f"({after.value.makespan}, {after.value.nodes})"
            )
        row, case_phases = _speedup_row(
            case, before, after, {"n": instance.n, "m": instance.m}
        )
        row.append(after.value.nodes)
        rows.append(row)
        phases.extend(case_phases)
    return ScenarioOutcome(
        record=BenchRecord.build(
            "PERF_oracle",
            [*_COLUMNS, "nodes"],
            rows,
            phases=phases,
            notes="memoized volume/eligibility/symmetry structures vs the "
            "per-node recomputing reference (identical search trees); "
            f"medians of repeat={repeat} after warmup={warmup}",
        ),
        profile_fn=lambda: certified_optimal(largest),
    )


def _scenario_oracle_parallel(
    repeat: int, warmup: int, smoke: bool
) -> ScenarioOutcome:
    """Root-split parallel oracle vs the sequential search.

    Both sides run :func:`~repro.certify.oracle.certified_optimal` —
    ``workers=1`` is the sequential branch and bound, ``workers=k``
    fans the root-split subtrees over a process pool with a shared
    scaled-integer incumbent.  The makespan must be identical on every
    case (node counts legitimately differ: cross-worker incumbent
    propagation prunes differently).  The recorded numbers are only
    meaningful relative to the measuring host's core count, which the
    notes therefore capture; on a single-core container the parallel
    side pays pool startup and oversubscription with no compute to win.

    The full run adds a *reach* row: the largest instance from a fixed
    deterministic ladder that each mode certifies within a 10-second
    budget (one timed run per rung, no repeats — reach is a frontier
    measure, not a latency one).
    """
    import multiprocessing
    import os
    import time

    import numpy as np

    from repro.certify.oracle import certified_optimal
    from repro.machines.profiles import geometric_speeds
    from repro.random_graphs.gilbert import gnnp
    from repro.scheduling.instance import UniformInstance, UnrelatedInstance

    def q_family(n_side: int, m: int, density: float) -> Any:
        graph = gnnp(n_side, density, seed=9)
        rng = np.random.default_rng(17)
        p = [int(x) for x in rng.integers(1, 9, graph.n)]
        return UniformInstance(graph, p, geometric_speeds(m, 2))

    def r_family(n_side: int, m: int) -> Any:
        graph = gnnp(n_side, 0.3, seed=13)
        rng = np.random.default_rng(23)
        times = [[int(x) for x in rng.integers(1, 15, graph.n)] for _ in range(m)]
        return UnrelatedInstance(graph, times)

    if smoke:
        families: list[tuple[str, Any]] = [("Q n=14 m=3", q_family(7, 3, 0.3))]
        worker_counts = [2]
    else:
        families = [
            ("Q n=24 m=4 d=0.4", q_family(12, 4, 0.4)),
            ("R n=22 m=4", r_family(11, 4)),
        ]
        worker_counts = [2, 4, 8]

    columns = [*_COLUMNS, "workers", "subtrees", "nodes seq", "nodes par"]
    rows: list[list[Any]] = []
    phases: list[BenchPhase] = []
    largest = families[-1][1]
    for case, instance in families:
        before = measure(
            certified_optimal, instance, repeat=repeat, warmup=warmup
        )
        for w in worker_counts:
            after = measure(
                certified_optimal, instance, w, repeat=repeat, warmup=warmup
            )
            if before.value.makespan != after.value.makespan:
                raise InvalidInstanceError(
                    f"oracle-parallel equivalence broke on {case} "
                    f"workers={w}: {before.value.makespan} vs "
                    f"{after.value.makespan}"
                )
            row, case_phases = _speedup_row(
                f"{case} workers={w}",
                before,
                after,
                {"n": instance.n, "m": instance.m, "workers": w},
            )
            row.extend(
                [
                    after.value.workers,
                    after.value.subtrees,
                    before.value.nodes,
                    after.value.nodes,
                ]
            )
            rows.append(row)
            phases.extend(case_phases)
    if multiprocessing.active_children():
        raise InvalidInstanceError(
            "oracle-parallel left live worker processes after teardown"
        )

    if not smoke:
        # reach under a fixed wall-clock budget: how far up the ladder
        # each mode certifies before a single run exceeds 10 seconds
        budget_s = 10.0
        ladder = [(n_side, 4) for n_side in (8, 9, 10, 11, 12, 13)]
        reach: dict[int, tuple[int, float]] = {}
        for w in (1, 4):
            best_n, best_s = 0, 0.0
            for n_side, m in ladder:
                instance = r_family(n_side, m)
                start = time.perf_counter()
                result = certified_optimal(instance, workers=w)
                elapsed = time.perf_counter() - start
                if elapsed > budget_s:
                    break
                best_n, best_s = instance.n, elapsed
                del result
            reach[w] = (best_n, best_s)
        seq_n, seq_s = reach[1]
        par_n, par_s = reach[4]
        rows.append(
            [
                f"reach: largest R n certified in {budget_s:.0f}s "
                f"(seq n={seq_n} vs workers=4 n={par_n})",
                seq_s * 1e3,
                par_s * 1e3,
                1.0,
                4,
                0,
                seq_n,
                par_n,
            ]
        )

    return ScenarioOutcome(
        record=BenchRecord.build(
            "PERF_oracle_parallel",
            columns,
            rows,
            phases=phases,
            notes="root-split parallel branch and bound (shared scaled-int "
            "incumbent over a process pool) vs the sequential search; "
            "identical makespans asserted per case; "
            f"host cpu_count={os.cpu_count()}; medians of repeat={repeat} "
            f"after warmup={warmup}",
        ),
        profile_fn=lambda: certified_optimal(largest, workers=2),
    )


def _scenario_batch_fanout(repeat: int, warmup: int, smoke: bool) -> ScenarioOutcome:
    """BatchRunner fan-out: persistent worker pool vs pool-per-run."""
    from repro.machines.profiles import power_law_speeds
    from repro.random_graphs.gilbert import gnnp
    from repro.runtime.batch import BatchRunner
    from repro.scheduling.instance import unit_uniform_instance

    # many small batches: the benchmark-harness shape where the pool
    # fork, not the solves, dominates a run
    runs, tasks_per_run, workers = (3, 4, 2) if smoke else (8, 4, 2)
    task_sets = [
        [
            (
                f"run{s}-task{i}",
                unit_uniform_instance(
                    gnnp(4, 0.2, seed=100 * s + i), power_law_speeds(3)
                ),
                "sqrt_approx",
            )
            for i in range(tasks_per_run)
        ]
        for s in range(runs)
    ]

    def fan_out(persistent: bool) -> list[list[Any]]:
        # a fresh runner per timed call: fresh cache, so every run pays
        # real solves; the only difference between the two modes is the
        # pool lifecycle under measurement
        with BatchRunner(workers=workers, persistent_pool=persistent) as runner:
            return [
                [(r.name, r.makespan) for r in runner.run_to_list(task_set)]
                for task_set in task_sets
            ]

    before = measure(fan_out, False, repeat=repeat, warmup=warmup, label="pool-per-run")
    after = measure(fan_out, True, repeat=repeat, warmup=warmup, label="persistent")
    if before.value != after.value:
        raise InvalidInstanceError("batch fan-out equivalence broke across pool modes")
    case = f"{runs} runs x {tasks_per_run} tasks, workers={workers}"
    row, phases = _speedup_row(
        case, before, after, {"runs": runs, "tasks": tasks_per_run, "workers": workers}
    )
    return ScenarioOutcome(
        record=BenchRecord.build(
            "PERF_batch_fanout",
            _COLUMNS,
            [row],
            phases=phases,
            notes="persistent worker pool reused across BatchRunner.run calls "
            "vs a pool forked per run; identical result streams; medians of "
            f"repeat={repeat} after warmup={warmup}",
        ),
        profile_fn=lambda: fan_out(True),
    )


def _scenario_fastpath(repeat: int, warmup: int, smoke: bool) -> ScenarioOutcome:
    """Integer/numpy fast-path kernels vs the rational reference tier.

    Unlike the other scenarios this one has no frozen baseline module:
    the "before" side *is* the reference tier, reached by pinning
    ``REPRO_FASTPATH=0`` around the call, and the "after" side is auto
    mode on the very same public function.  Equivalence is asserted on
    every case — the same byte-identical contract the differential
    suite (``tests/differential/``) proves property-wise.
    """
    import os
    import random
    from fractions import Fraction

    from repro.graphs.generators import empty_graph
    from repro.scheduling.bounds import min_cover_time, min_cover_time_with_loads
    from repro.scheduling.instance import UniformInstance
    from repro.scheduling.list_scheduling import assign_group_greedy

    def in_mode(mode: str | None, fn: Callable[..., Any]) -> Callable[..., Any]:
        # pin REPRO_FASTPATH for the duration of each timed call (None
        # unsets it, i.e. auto) and restore whatever the caller had
        def run(*args: Any) -> Any:
            prior = os.environ.get("REPRO_FASTPATH")
            if mode is None:
                os.environ.pop("REPRO_FASTPATH", None)
            else:
                os.environ["REPRO_FASTPATH"] = mode
            try:
                return fn(*args)
            finally:
                if prior is None:
                    os.environ.pop("REPRO_FASTPATH", None)
                else:
                    os.environ["REPRO_FASTPATH"] = prior

        return run

    rng = random.Random(11)
    rows: list[list[Any]] = []
    phases: list[BenchPhase] = []

    def add_case(
        case: str,
        fn: Callable[..., Any],
        args: tuple[Any, ...],
        size: dict[str, Any],
        canonical: Callable[[Any], Any] = lambda v: v,
    ) -> None:
        before = measure(in_mode("0", fn), *args, repeat=repeat, warmup=warmup)
        after = measure(in_mode(None, fn), *args, repeat=repeat, warmup=warmup)
        if canonical(before.value) != canonical(after.value):
            raise InvalidInstanceError(f"fastpath equivalence broke on {case}")
        row, case_phases = _speedup_row(case, before, after, size)
        rows.append(row)
        phases.extend(case_phases)

    # greedy list scheduling, unit jobs on identical machines: the
    # closed-form round-robin numpy path
    n, m = (2000, 8) if smoke else (50000, 32)
    unit_inst = UniformInstance(empty_graph(n), [1] * n, [Fraction(1)] * m)
    unit_args = (unit_inst, list(range(n)), list(range(m)))
    add_case(
        f"greedy unit n={n} m={m}",
        assign_group_greedy,
        unit_args,
        {"n": n, "m": m},
        canonical=lambda d: list(d.items()),  # insertion order is part of the contract
    )

    if not smoke:
        # mixed job sizes across few speed groups: the int heap kernel
        n2, m2 = 20000, 64
        p2 = [rng.randint(1, 20) for _ in range(n2)]
        speeds2 = sorted(
            [Fraction(a, b) for a, b in ((3, 2), (1, 1), (2, 3), (1, 2)) for _ in range(16)],
            reverse=True,
        )
        add_case(
            f"greedy mixed n={n2} m={m2} (4 speed groups)",
            assign_group_greedy,
            (UniformInstance(empty_graph(n2), p2, speeds2), list(range(n2)), list(range(m2))),
            {"n": n2, "m": m2},
            canonical=lambda d: list(d.items()),
        )

    # cover-time bounds: vectorized jump-point search; denominators kept
    # small so the int64 pre-check admits the numpy kernel
    mc, demand = (512, 2500) if smoke else (10000, 50000)
    speeds = sorted(
        (Fraction(rng.randint(1, 8), rng.randint(1, 6)) for _ in range(mc)),
        reverse=True,
    )
    add_case(
        f"min_cover_time m={mc} demand={demand}",
        min_cover_time,
        (speeds, demand),
        {"m": mc, "demand": demand},
    )
    loads = [rng.randint(0, 5) for _ in range(mc)]
    add_case(
        f"min_cover_time_with_loads m={mc} demand={demand}",
        min_cover_time_with_loads,
        (speeds, loads, demand),
        {"m": mc, "demand": demand},
    )

    profile_args = unit_args
    return ScenarioOutcome(
        record=BenchRecord.build(
            "PERF_fastpath",
            _COLUMNS,
            rows,
            phases=phases,
            notes="integer-normalized / numpy fast-path kernels (auto mode) vs "
            "the rational reference tier (REPRO_FASTPATH=0) on the same public "
            "APIs; byte-identical results asserted per case; medians of "
            f"repeat={repeat} after warmup={warmup}",
        ),
        profile_fn=lambda: in_mode(None, assign_group_greedy)(*profile_args),
    )


SCENARIOS: dict[str, Callable[[int, int, bool], ScenarioOutcome]] = {
    "hopcroft_karp": _scenario_hopcroft_karp,
    "list_scheduling": _scenario_list_scheduling,
    "oracle": _scenario_oracle,
    "oracle-parallel": _scenario_oracle_parallel,
    "batch_fanout": _scenario_batch_fanout,
    "fastpath": _scenario_fastpath,
}

#: scenario names in the order ``repro perf --target all`` runs them
SCENARIO_NAMES = tuple(SCENARIOS)


def run_scenario(
    target: str,
    repeat: int = 5,
    warmup: int = 1,
    smoke: bool = False,
) -> ScenarioOutcome:
    """Run one named perf scenario.

    Parameters
    ----------
    target:
        One of :data:`SCENARIO_NAMES`.
    repeat, warmup:
        The timing policy (see :func:`repro.perf.timer.measure`).
    smoke:
        Use the CI smoke shape: smaller sweeps, same code paths.

    Returns
    -------
    ScenarioOutcome
        The measured record plus a profile target.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        On an unknown target, or if an optimized hot path disagrees
        with its reference implementation (equivalence is asserted on
        every measured case).
    """
    scenario = SCENARIOS.get(target)
    if scenario is None:
        known = ", ".join(SCENARIO_NAMES)
        raise InvalidInstanceError(f"unknown perf target {target!r}; known: {known}")
    return scenario(repeat, warmup, smoke)
