"""Deterministic timing: warmup + repeat + median, injectable clocks.

The policy every measurement in this repo follows (documented in
``docs/PERFORMANCE.md``):

* **warmup** runs are executed and discarded (they pay for imports,
  allocator warmup, and branch caches);
* **repeat** timed runs follow; the reported figure is their **median**
  wall clock (robust against scheduler noise, unlike the mean);
* CPU time is recorded alongside wall time so cache stalls and
  subprocess waits are distinguishable from compute.

Clocks are injectable (``wall_clock=``/``cpu_clock=``), which is what
makes the harness *testable*: the unit tests drive :func:`measure` with
a fake monotone clock and assert the exact medians, so the statistics
pipeline itself is verified deterministically.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from contextlib import contextmanager

from repro.exceptions import InvalidInstanceError
from repro.perf.record import BenchPhase

__all__ = ["TimingResult", "Stopwatch", "measure"]


@dataclass(frozen=True)
class TimingResult:
    """The outcome of one :func:`measure` call.

    Parameters
    ----------
    label:
        Human-readable name of the measured callable.
    warmup, repeat:
        The policy the measurement ran under.
    wall_times_s, cpu_times_s:
        Per-repeat samples, in execution order (length ``repeat``).
    value:
        The measured callable's return value from the *last* timed run
        (so callers can assert result correctness without re-running).
    """

    label: str
    warmup: int
    repeat: int
    wall_times_s: tuple[float, ...]
    cpu_times_s: tuple[float, ...]
    value: Any

    @property
    def median_s(self) -> float:
        """Median wall-clock seconds (the headline figure)."""
        return statistics.median(self.wall_times_s)

    @property
    def cpu_median_s(self) -> float:
        """Median CPU seconds."""
        return statistics.median(self.cpu_times_s)

    @property
    def min_s(self) -> float:
        """Fastest wall-clock repeat."""
        return min(self.wall_times_s)

    @property
    def mean_s(self) -> float:
        """Mean wall-clock seconds (reported, never the headline)."""
        return statistics.fmean(self.wall_times_s)

    def to_phase(
        self,
        name: str | None = None,
        size: dict[str, Any] | None = None,
        ratio: float | None = None,
    ) -> BenchPhase:
        """This measurement as a :class:`~repro.perf.record.BenchPhase`."""
        return BenchPhase(
            name=name or self.label,
            wall_time_s=self.median_s,
            cpu_time_s=self.cpu_median_s,
            repeat=self.repeat,
            size=size or {},
            ratio=ratio,
        )


def measure(
    fn: Callable[..., Any],
    *args: Any,
    repeat: int = 5,
    warmup: int = 1,
    label: str | None = None,
    wall_clock: Callable[[], float] = time.perf_counter,
    cpu_clock: Callable[[], float] = time.process_time,
    **kwargs: Any,
) -> TimingResult:
    """Time ``fn(*args, **kwargs)`` under the warmup/repeat/median policy.

    Parameters
    ----------
    fn:
        The callable to measure.
    *args, **kwargs:
        Forwarded to ``fn`` on every run.
    repeat:
        Number of timed runs (must be >= 1); the reported figure is
        their median.
    warmup:
        Number of discarded runs before timing starts (must be >= 0).
    label:
        Name for reports; defaults to ``fn.__name__``.
    wall_clock, cpu_clock:
        Clock callables returning seconds.  Injectable so tests can
        verify the statistics deterministically with fake clocks.

    Returns
    -------
    TimingResult
        Per-repeat samples plus the last run's return value.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        If ``repeat < 1`` or ``warmup < 0``.

    Examples
    --------
    >>> timing = measure(sorted, [3, 1, 2], repeat=3, warmup=1)
    >>> timing.value
    [1, 2, 3]
    >>> timing.repeat, len(timing.wall_times_s)
    (3, 3)
    """
    if repeat < 1:
        raise InvalidInstanceError(f"repeat must be >= 1, got {repeat}")
    if warmup < 0:
        raise InvalidInstanceError(f"warmup must be >= 0, got {warmup}")
    name = label or getattr(fn, "__name__", "callable")
    for _ in range(warmup):
        fn(*args, **kwargs)
    walls: list[float] = []
    cpus: list[float] = []
    value: Any = None
    for _ in range(repeat):
        cpu0 = cpu_clock()
        wall0 = wall_clock()
        value = fn(*args, **kwargs)
        walls.append(wall_clock() - wall0)
        cpus.append(cpu_clock() - cpu0)
    return TimingResult(
        label=name,
        warmup=warmup,
        repeat=repeat,
        wall_times_s=tuple(walls),
        cpu_times_s=tuple(cpus),
        value=value,
    )


class Stopwatch:
    """Collect named phase timings with ``with``-blocks.

    Used by benchmark drivers that time *stages* of one pipeline run
    (build, solve, audit) rather than repeating a single callable:

    >>> sw = Stopwatch(wall_clock=iter([0.0, 2.0]).__next__)
    >>> with sw.phase("solve", size={"n": 4}):
    ...     pass
    >>> [(p.name, p.wall_time_s) for p in sw.phases]
    [('solve', 2.0)]
    """

    def __init__(
        self,
        wall_clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] | None = time.process_time,
    ) -> None:
        self._wall_clock = wall_clock
        self._cpu_clock = cpu_clock
        self.phases: list[BenchPhase] = []

    @contextmanager
    def phase(
        self, name: str, size: dict[str, Any] | None = None
    ) -> Iterator[None]:
        """Time the enclosed block as one named phase."""
        cpu0 = self._cpu_clock() if self._cpu_clock is not None else None
        wall0 = self._wall_clock()
        try:
            yield
        finally:
            wall = self._wall_clock() - wall0
            cpu = (
                self._cpu_clock() - cpu0
                if self._cpu_clock is not None and cpu0 is not None
                else None
            )
            self.phases.append(
                BenchPhase(
                    name=name,
                    wall_time_s=wall,
                    cpu_time_s=cpu,
                    repeat=1,
                    size=size or {},
                )
            )
