"""Performance engineering: timing, profiling, and BENCH artifacts.

The perf subsystem closes the loop the ROADMAP's "fast as the hardware
allows" goal needs:

* :mod:`repro.perf.timer` — the deterministic warmup/repeat/median
  measurement policy (:func:`measure`, :class:`Stopwatch`), with
  injectable clocks so the statistics are unit-testable;
* :mod:`repro.perf.profile` — cProfile top-N hotspot extraction as
  structured data (:func:`profile_top`);
* :mod:`repro.perf.record` — the machine-readable ``BENCH_<id>.json``
  artifact schema every benchmark emits
  (:class:`BenchRecord`, :func:`validate_bench_record`), plus the
  append-only ``BENCH_trajectory.jsonl`` perf trajectory;
* :mod:`repro.perf.baselines` — preserved pre-optimization hot paths,
  so equivalence tests and before/after rows stay reproducible;
* :mod:`repro.perf.scenarios` — the ``repro perf`` sweeps measuring the
  optimized hot paths against those baselines.

See ``docs/PERFORMANCE.md`` for the methodology and the measured
before/after tables.
"""

from repro.perf.profile import ProfileLine, ProfileReport, profile_top
from repro.perf.record import (
    BENCH_FORMAT,
    BenchPhase,
    BenchRecord,
    git_revision,
    json_cell,
    utc_timestamp,
    validate_bench_record,
    write_bench_record,
)
from repro.perf.timer import Stopwatch, TimingResult, measure

__all__ = [
    "BENCH_FORMAT",
    "BenchPhase",
    "BenchRecord",
    "ProfileLine",
    "ProfileReport",
    "Stopwatch",
    "TimingResult",
    "git_revision",
    "json_cell",
    "measure",
    "profile_top",
    "utc_timestamp",
    "validate_bench_record",
    "write_bench_record",
]
