"""The ``BENCH_<id>.json`` perf-artifact schema.

Every benchmark run (and every ``repro perf`` scenario) leaves a
machine-readable record of what was measured: the experiment id, the git
revision and timestamp it ran at, the instance-size sweep as a
column/row table, and the per-phase timings.  Records are emitted by
:func:`benchmarks._common.emit_record` next to each human-readable
``.txt`` table, validated by :func:`validate_bench_record` (CI fails on
schema violations via ``repro perf --check``), and aggregated into
trajectory tables by :mod:`repro.analysis.perf_trend`.

Design constraints mirror :mod:`repro.io`: the on-disk form is plain
JSON, exact rationals are stored as ``"num/den"`` strings, and a round
trip through :func:`BenchRecord.to_dict` / :func:`BenchRecord.from_dict`
is loss-free.
"""

from __future__ import annotations

import subprocess
from dataclasses import dataclass, field
from functools import lru_cache
from datetime import datetime, timezone
from fractions import Fraction
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.exceptions import BenchSchemaError

__all__ = [
    "BENCH_FORMAT",
    "BenchPhase",
    "BenchRecord",
    "git_revision",
    "json_cell",
    "utc_timestamp",
    "validate_bench_record",
    "write_bench_record",
]

#: format tag stamped into every record (bump on incompatible change)
BENCH_FORMAT = "repro/bench-record/v1"


@lru_cache(maxsize=8)
def _git_revision_cached(where: Path) -> str:
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=where,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=where,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return f"{rev}-dirty" if status else rev


def git_revision(cwd: str | Path | None = None) -> str:
    """The short git revision of the working tree, or ``"unknown"``.

    Parameters
    ----------
    cwd:
        Directory to resolve the revision in.  Defaults to this file's
        repository checkout; artifacts emitted from an installed wheel
        (no ``.git``) degrade to ``"unknown"`` instead of raising.

    Returns
    -------
    str
        Short commit hash, with a ``"-dirty"`` suffix when the tree has
        uncommitted changes, or ``"unknown"``.

    Notes
    -----
    Cached per directory for the life of the process — a benchmark
    suite stamps dozens of artifacts and the revision cannot change
    mid-run, so only the first call pays the two git subprocesses.
    """
    where = Path(cwd) if cwd is not None else Path(__file__).resolve().parent
    return _git_revision_cached(where)


def utc_timestamp() -> str:
    """The current UTC time as an ISO-8601 string (second precision)."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def json_cell(value: Any) -> Any:
    """One table cell coerced to a JSON-stable scalar.

    Exact rationals become ``"num/den"`` strings (loss-free, matching
    :mod:`repro.io`); numpy scalars collapse to their Python ``int`` /
    ``float``; everything else unknown falls back to ``str``.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return value
    # numpy scalars expose item(); avoid importing numpy here
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return json_cell(item())
        except (TypeError, ValueError):
            pass
    return str(value)


@dataclass(frozen=True)
class BenchPhase:
    """One timed phase of a benchmark or perf scenario.

    Parameters
    ----------
    name:
        Phase label, e.g. ``"hopcroft_karp[n=800]"``.
    wall_time_s:
        Median wall-clock seconds across the repeats.
    cpu_time_s:
        Median CPU seconds (``None`` when not measured).
    repeat:
        How many timed repetitions the median is over.
    size:
        The instance-size coordinates of this phase (``{"n": 800}``).
    ratio:
        Makespan/bound quotient where the phase solves instances
        (``None`` for pure computational kernels).
    """

    name: str
    wall_time_s: float
    cpu_time_s: float | None = None
    repeat: int = 1
    size: dict[str, Any] = field(default_factory=dict)
    ratio: float | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict form."""
        return {
            "name": self.name,
            "wall_time_s": self.wall_time_s,
            "cpu_time_s": self.cpu_time_s,
            "repeat": self.repeat,
            "size": {k: json_cell(v) for k, v in self.size.items()},
            "ratio": self.ratio,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchPhase":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(data["name"]),
            wall_time_s=float(data["wall_time_s"]),
            cpu_time_s=(
                None if data.get("cpu_time_s") is None else float(data["cpu_time_s"])
            ),
            repeat=int(data.get("repeat", 1)),
            size=dict(data.get("size", {})),
            ratio=None if data.get("ratio") is None else float(data["ratio"]),
        )


@dataclass(frozen=True)
class BenchRecord:
    """One machine-readable benchmark artifact (``BENCH_<id>.json``).

    Parameters
    ----------
    experiment_id:
        The experiment this record belongs to (``"E10_scaling"``,
        ``"PERF_hopcroft_karp"``); determines the artifact filename.
    git_rev:
        Git revision the measurement ran at (:func:`git_revision`).
    timestamp:
        ISO-8601 UTC emission time (:func:`utc_timestamp`).
    columns:
        Header of the sweep table (mirrors the emitted ``.txt``).
    rows:
        The sweep data, one row per size/configuration cell; cells are
        JSON-stable scalars (:func:`json_cell` is applied on ``build``).
    phases:
        Per-phase timings (may be empty for ratio-only experiments).
    notes:
        Free-form provenance (sweep description, smoke flag, ...).
    meta:
        Optional headline scalars that don't fit the sweep table
        (``{"speedup_qps": 5.2, "concurrency": 32}``).  Serialised only
        when non-empty, so records without it stay byte-identical to
        the pre-``meta`` schema.
    """

    experiment_id: str
    git_rev: str
    timestamp: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Any, ...], ...]
    phases: tuple[BenchPhase, ...] = ()
    notes: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        experiment_id: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
        phases: Iterable[BenchPhase] = (),
        notes: str = "",
        git_rev: str | None = None,
        timestamp: str | None = None,
        meta: dict[str, Any] | None = None,
    ) -> "BenchRecord":
        """Construct a record, stamping provenance and coercing cells.

        Parameters
        ----------
        experiment_id, columns, rows, phases, notes, meta:
            See the class fields (``meta`` values pass through
            :func:`json_cell` like table cells).
        git_rev, timestamp:
            Explicit provenance overrides; default to the live
            :func:`git_revision` / :func:`utc_timestamp`.

        Returns
        -------
        BenchRecord
            A schema-valid record (validated before returning).

        Raises
        ------
        repro.exceptions.BenchSchemaError
            If the assembled record violates the schema (e.g. a row
            length disagrees with ``columns``).
        """
        record = cls(
            experiment_id=str(experiment_id),
            git_rev=git_revision() if git_rev is None else git_rev,
            timestamp=utc_timestamp() if timestamp is None else timestamp,
            columns=tuple(str(c) for c in columns),
            rows=tuple(tuple(json_cell(cell) for cell in row) for row in rows),
            phases=tuple(phases),
            notes=notes,
            meta={str(k): json_cell(v) for k, v in (meta or {}).items()},
        )
        validate_bench_record(record.to_dict())
        return record

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready dict form (the on-disk schema)."""
        data = {
            "format": BENCH_FORMAT,
            "kind": "bench_record",
            "experiment_id": self.experiment_id,
            "git_rev": self.git_rev,
            "timestamp": self.timestamp,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "phases": [phase.to_dict() for phase in self.phases],
            "notes": self.notes,
        }
        if self.meta:
            data["meta"] = dict(self.meta)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchRecord":
        """Inverse of :meth:`to_dict`; validates first.

        Raises
        ------
        repro.exceptions.BenchSchemaError
            If ``data`` is not a schema-valid bench record.
        """
        validate_bench_record(data)
        return cls(
            experiment_id=str(data["experiment_id"]),
            git_rev=str(data["git_rev"]),
            timestamp=str(data["timestamp"]),
            columns=tuple(str(c) for c in data["columns"]),
            rows=tuple(tuple(row) for row in data["rows"]),
            phases=tuple(BenchPhase.from_dict(p) for p in data["phases"]),
            notes=str(data.get("notes", "")),
            meta=dict(data.get("meta", {})),
        )


def _fail(experiment: Any, message: str) -> None:
    raise BenchSchemaError(f"bench record {experiment!r}: {message}")


def validate_bench_record(data: Any) -> None:
    """Check one bench-record dict against the v1 schema.

    Parameters
    ----------
    data:
        The parsed JSON object of a ``BENCH_<id>.json`` file (or one
        trajectory JSONL line).

    Raises
    ------
    repro.exceptions.BenchSchemaError
        On any violation: wrong format tag, missing field, type
        mismatch, or a row whose length disagrees with ``columns``.
    """
    if not isinstance(data, dict):
        raise BenchSchemaError(f"bench record must be an object, got {type(data).__name__}")
    experiment = data.get("experiment_id", "?")
    if data.get("format") != BENCH_FORMAT:
        _fail(experiment, f"format must be {BENCH_FORMAT!r}, found {data.get('format')!r}")
    if data.get("kind") != "bench_record":
        _fail(experiment, f"kind must be 'bench_record', found {data.get('kind')!r}")
    for key in ("experiment_id", "git_rev", "timestamp"):
        if not isinstance(data.get(key), str) or not data[key]:
            _fail(experiment, f"{key} must be a non-empty string")
    columns = data.get("columns")
    if not isinstance(columns, list) or not all(isinstance(c, str) for c in columns):
        _fail(experiment, "columns must be a list of strings")
    rows = data.get("rows")
    if not isinstance(rows, list):
        _fail(experiment, "rows must be a list")
    for i, row in enumerate(rows):
        if not isinstance(row, list):
            _fail(experiment, f"row {i} must be a list")
        if len(row) != len(columns):
            _fail(
                experiment,
                f"row {i} has {len(row)} cells for {len(columns)} columns",
            )
        for cell in row:
            if cell is not None and not isinstance(cell, (bool, int, float, str)):
                _fail(experiment, f"row {i} holds a non-scalar cell {cell!r}")
    phases = data.get("phases")
    if not isinstance(phases, list):
        _fail(experiment, "phases must be a list")
    for i, phase in enumerate(phases):
        if not isinstance(phase, dict):
            _fail(experiment, f"phase {i} must be an object")
        if not isinstance(phase.get("name"), str) or not phase["name"]:
            _fail(experiment, f"phase {i} needs a non-empty name")
        wall = phase.get("wall_time_s")
        if not isinstance(wall, (int, float)) or isinstance(wall, bool) or wall < 0:
            _fail(experiment, f"phase {i} wall_time_s must be a non-negative number")
        repeat = phase.get("repeat", 1)
        if not isinstance(repeat, int) or isinstance(repeat, bool) or repeat < 1:
            _fail(experiment, f"phase {i} repeat must be a positive integer")
        for key in ("cpu_time_s", "ratio"):
            value = phase.get(key)
            if value is not None and (
                not isinstance(value, (int, float)) or isinstance(value, bool)
            ):
                _fail(experiment, f"phase {i} {key} must be a number or null")
        if not isinstance(phase.get("size", {}), dict):
            _fail(experiment, f"phase {i} size must be an object")
    if not isinstance(data.get("notes", ""), str):
        _fail(experiment, "notes must be a string")
    meta = data.get("meta", {})
    if not isinstance(meta, dict):
        _fail(experiment, "meta must be an object")
    for key, value in meta.items():
        if not isinstance(key, str):
            _fail(experiment, f"meta key {key!r} must be a string")
        if value is not None and not isinstance(value, (bool, int, float, str)):
            _fail(experiment, f"meta[{key!r}] holds a non-scalar value {value!r}")


def write_bench_record(
    record: BenchRecord,
    out_dir: str | Path,
    trajectory: bool = True,
) -> Path:
    """Persist ``record`` as ``<out_dir>/BENCH_<id>.json``.

    Parameters
    ----------
    record:
        The record to write (re-validated on the way out).
    out_dir:
        Artifact directory; created (with parents) when missing.
    trajectory:
        Also append the record as one JSONL line to
        ``BENCH_trajectory.jsonl`` in the same directory, so repeated
        runs accumulate a perf trajectory instead of overwriting it.

    Returns
    -------
    pathlib.Path
        The path of the written ``BENCH_<id>.json``.
    """
    from repro.io import append_jsonl, save_json

    data = record.to_dict()
    validate_bench_record(data)
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{record.experiment_id}.json"
    save_json(data, path)
    if trajectory:
        append_jsonl(data, directory / "BENCH_trajectory.jsonl")
    return path
