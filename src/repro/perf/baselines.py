"""Pre-optimization reference implementations of the hot paths.

When a hot path is optimized, its original implementation moves here —
verbatim — so that (a) the equivalence tests can prove the optimized
code computes the same results, and (b) ``repro perf`` can keep
producing *reproducible* before/after rows in the BENCH artifacts
instead of numbers measured once and pasted into docs.

These functions are reference material: correct, slow, and frozen.  Do
not "fix" them to match future behaviour changes — change the
equivalence tests' expectations instead, consciously.
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.certify.oracle import OracleResult

from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
)
from repro.scheduling.schedule import Schedule

__all__ = [
    "hopcroft_karp_baseline",
    "assign_group_greedy_baseline",
    "certified_optimal_baseline",
]

_INF = float("inf")


def hopcroft_karp_baseline(graph: BipartiteGraph) -> list[int]:
    """The pre-optimization recursive Hopcroft–Karp (reference only).

    Recursion-based augmenting DFS over ``graph.neighbors`` frozensets,
    with a temporary recursion-limit raise for path-like graphs.  The
    optimized :func:`repro.graphs.matching.hopcroft_karp` replaces this
    with an iterative DFS over reused sorted adjacency lists.

    Parameters
    ----------
    graph:
        The bipartite graph to match.

    Returns
    -------
    list of int
        A mate array: ``mate[v]`` is ``v``'s partner or ``-1``.
    """
    left = graph.vertices_on_side(0)
    mate = [-1] * graph.n
    dist: dict[int, float] = {}

    def bfs() -> bool:
        from collections import deque

        q = deque()
        for u in left:
            if mate[u] == -1:
                dist[u] = 0
                q.append(u)
            else:
                dist[u] = _INF
        found = False
        while q:
            u = q.popleft()
            for v in graph.neighbors(u):
                w = mate[v]
                if w == -1:
                    found = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    q.append(w)
        return found

    def dfs(u: int) -> bool:
        for v in graph.neighbors(u):
            w = mate[v]
            if w == -1 or (dist[w] == dist[u] + 1 and dfs(w)):
                mate[u] = v
                mate[v] = u
                return True
        dist[u] = _INF
        return False

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, graph.n * 2 + 100))
    try:
        while bfs():
            for u in left:
                if mate[u] == -1:
                    dfs(u)
    finally:
        sys.setrecursionlimit(old_limit)
    return mate


def assign_group_greedy_baseline(
    instance: UniformInstance,
    jobs: Sequence[int],
    machines: Sequence[int],
) -> dict[int, int]:
    """The pre-optimization O(n·m) greedy list scheduling (reference only).

    Evaluates every machine's candidate completion time — one exact
    :class:`~fractions.Fraction` division per (job, machine) pair — for
    every job.  The optimized
    :func:`repro.scheduling.list_scheduling.assign_group_greedy` keeps
    one load-heap per distinct speed instead.

    Parameters
    ----------
    instance:
        The uniform instance supplying ``p`` and ``speeds``.
    jobs:
        The (independent) job class to place.
    machines:
        The machine group receiving it.

    Returns
    -------
    dict
        ``job -> machine`` mapping.
    """
    from repro.scheduling.list_scheduling import lpt_order

    if not machines and jobs:
        raise InvalidInstanceError("cannot schedule jobs on an empty machine group")
    loads: dict[int, int] = {i: 0 for i in machines}
    result: dict[int, int] = {}
    for j in lpt_order(instance, jobs):
        best_i = None
        best_done: Fraction | None = None
        for i in machines:
            done = Fraction(loads[i] + instance.p[j]) / instance.speeds[i]
            if best_done is None or done < best_done:
                best_done = done
                best_i = i
        assert best_i is not None  # repro: allow[RS004] reason=m >= 1 is validated upstream, so the argmin loop always picks a machine
        loads[best_i] += instance.p[j]
        result[j] = best_i
    return result


def certified_optimal_baseline(instance: SchedulingInstance) -> OracleResult:
    """The pre-optimization exact oracle inner loop (reference only).

    Identical search strategy to
    :func:`repro.certify.oracle.certified_optimal` — same incumbent
    seeding, same branch order, same pruning rules — but with the costs
    the optimization removed: per-node recomputation of the unrelated
    volume bound, per-visit ``graph.neighbors`` lookups, and pairwise
    machine-row comparisons in the empty-machine symmetry break.
    Explores the same node set, so equivalence tests compare makespan
    *and* node count.

    Parameters
    ----------
    instance:
        The instance to solve exactly.

    Returns
    -------
    repro.certify.oracle.OracleResult
        Provably optimal schedule plus proof metadata.
    """
    from repro.certify.oracle import OracleResult, _branch_order, _seed_incumbent
    from repro.certify.validators import instance_lower_bound
    from repro.scheduling.bounds import min_cover_time_with_loads

    n, m = instance.n, instance.m
    lower = instance_lower_bound(instance)
    if n == 0:
        return OracleResult(
            Schedule(instance, []), Fraction(0), lower, 0, "bound-tight", None
        )

    incumbent, seeded_from = _seed_incumbent(instance)
    if incumbent is not None and lower is not None and incumbent.makespan == lower:
        return OracleResult(
            incumbent, incumbent.makespan, lower, 0, "bound-tight", seeded_from
        )

    graph = instance.graph
    uniform = isinstance(instance, UniformInstance)
    speeds = instance.speeds if uniform else None
    times: list[list[Fraction | None]] = [
        [instance.processing_time(i, j) for j in range(n)] for i in range(m)
    ]
    branched, tail = _branch_order(instance)
    tail_units = len(tail)
    if uniform:
        suffix_units = [0] * (len(branched) + 1)
        for k in range(len(branched) - 1, -1, -1):
            suffix_units[k] = suffix_units[k + 1] + instance.p[branched[k]]
        suffix_units = [u + tail_units for u in suffix_units]

    best_assignment: list[int] | None = None
    best_makespan: Fraction | None = (
        incumbent.makespan if incumbent is not None else None
    )
    completions: list[Fraction] = [Fraction(0)] * m
    unit_loads: list[int] = [0] * m
    machine_jobs: list[set[int]] = [set() for _ in range(m)]
    assignment: list[int] = [-1] * n
    nodes = 0

    def _finish_tail() -> None:
        nonlocal best_assignment, best_makespan
        if tail_units:
            span = min_cover_time_with_loads(speeds, unit_loads, tail_units)
        else:
            span = max(completions)
        if best_makespan is not None and span >= best_makespan:
            return
        if tail_units:
            from repro.utils.rationals import floor_fraction

            slack = [
                floor_fraction(speeds[i] * span) - unit_loads[i]
                for i in range(m)
            ]
            pos = 0
            for j in tail:
                while slack[pos % m] <= 0:
                    pos += 1
                assignment[j] = pos % m
                slack[pos % m] -= 1
        best_makespan = span
        best_assignment = assignment.copy()
        if tail_units:
            for j in tail:
                assignment[j] = -1

    def _prune_bound(pos: int) -> Fraction:
        bound = max(completions)
        if uniform:
            capacity = min_cover_time_with_loads(
                speeds, unit_loads, suffix_units[pos]
            )
            if capacity > bound:
                bound = capacity
        else:
            volume = sum(completions, Fraction(0))
            for k in range(pos, len(branched)):
                j = branched[k]
                cheapest = min(
                    (times[i][j] for i in range(m) if times[i][j] is not None),
                    default=None,
                )
                if cheapest is not None:
                    volume += cheapest
            if volume / m > bound:
                bound = volume / m
        return bound

    def place(pos: int) -> None:
        nonlocal best_assignment, best_makespan, nodes
        if pos == len(branched):
            _finish_tail()
            return
        nodes += 1
        if best_makespan is not None and _prune_bound(pos) >= best_makespan:
            return
        for k in range(pos, len(branched)):
            jj = branched[k]
            viable = False
            for i in range(m):
                t = times[i][jj]
                if t is None or machine_jobs[i] & graph.neighbors(jj):
                    continue
                if (
                    best_makespan is not None
                    and completions[i] + t >= best_makespan
                ):
                    continue
                viable = True
                break
            if not viable:
                return
        j = branched[pos]
        neighbors = graph.neighbors(j)
        for i in sorted(range(m), key=lambda i: completions[i]):
            t = times[i][j]
            if t is None or machine_jobs[i] & neighbors:
                continue
            if not machine_jobs[i] and _earlier_equivalent_empty(i):
                continue
            done = completions[i] + t
            if best_makespan is not None and done >= best_makespan:
                continue
            completions[i] = done
            machine_jobs[i].add(j)
            assignment[j] = i
            if uniform:
                unit_loads[i] += instance.p[j]
            place(pos + 1)
            completions[i] = done - t
            machine_jobs[i].remove(j)
            assignment[j] = -1
            if uniform:
                unit_loads[i] -= instance.p[j]

    def _earlier_equivalent_empty(i: int) -> bool:
        for other in range(i):
            if machine_jobs[other]:
                continue
            if all(times[other][j] == times[i][j] for j in range(n)):
                return True
        return False

    place(0)

    if best_assignment is None:
        if incumbent is not None:
            return OracleResult(
                incumbent,
                incumbent.makespan,
                lower,
                nodes,
                "search-exhausted",
                seeded_from,
            )
        raise InfeasibleInstanceError("no feasible schedule exists")
    if incumbent is not None and best_makespan == incumbent.makespan:
        schedule = incumbent
    else:
        schedule = Schedule(instance, best_assignment)
    return OracleResult(
        schedule, schedule.makespan, lower, nodes, "search-exhausted", seeded_from
    )
