"""The batch execution engine: many instances, one driver.

Every benchmark and example used to hand-roll the same loop — build an
instance, call :func:`repro.engine.solve`, time it, compute a lower
bound, collect a row.  :class:`BatchRunner` centralises that loop and
adds the throughput machinery the one-at-a-time path cannot offer:

* **fan-out** across a :mod:`multiprocessing` worker pool with chunked
  task batching and a persistent pool reused across :meth:`BatchRunner.run`
  calls (``workers=1`` stays in-process, exactly reproducing the
  sequential semantics);
* **deduplication** — semantically identical (instance, algorithm)
  tasks are solved once per batch, keyed by the canonical content hash
  of :mod:`repro.runtime.cache`;
* **caching** — an optional JSONL-backed :class:`ResultCache` carries
  results across runs, so a warm re-run touches no solver at all;
* **streaming** — results are yielded in submission order as structured
  :class:`BatchResult` records and can be appended to JSONL through
  :mod:`repro.io` while the batch is still running.

Determinism: every registered solver is deterministic (randomness lives
in instance *generation*, which happens before the runner sees the
payload), so results are invariant under the worker count and under
cache warmth — properties the test-suite pins down.
"""

from __future__ import annotations

import multiprocessing
import weakref
from dataclasses import dataclass, field
from fractions import Fraction
from itertools import islice
from pathlib import Path
from time import perf_counter
from typing import Any, Iterable, Iterator, NamedTuple

from repro.certify.validators import instance_lower_bound
from repro.engine.dispatch import auto_choice, solve
from repro.exceptions import InvalidInstanceError, ReproError
from repro.io import (
    dump_jsonl_line,
    frac_str as _frac_str,
    instance_from_dict,
    instance_to_dict,
)
from repro.runtime.cache import ResultCache, task_key
from repro.scheduling.instance import SchedulingInstance

__all__ = [
    "RESULT_FORMAT",
    "BatchTask",
    "BatchResult",
    "BatchStats",
    "BatchRunner",
]

RESULT_FORMAT = "repro/batch-result/v1"


class BatchTask(NamedTuple):
    """One unit of batch work: a named, serialised instance.

    ``payload`` is the canonical JSON dict of
    :func:`repro.io.instance_to_dict` — keeping tasks as plain data makes
    them cheap to hash, pickle to workers, and load from spec files.
    ``algorithm=None`` defers to the runner's default.  ``certify=True``
    audits the produced schedule through :mod:`repro.certify` and stores
    the certificate in the result record (the runner's own ``certify``
    flag turns this on batch-wide).
    """

    name: str
    payload: dict[str, Any]
    algorithm: str | None = None
    certify: bool = False


def _frac_parse(text: str | None) -> Fraction | None:
    return None if text is None else Fraction(text)


@dataclass(frozen=True)
class BatchResult:
    """The structured outcome of solving one batch item.

    Scalar summary only (no schedule): records must stay cheap to pickle
    back from workers and to stream as JSONL.  ``makespan`` and
    ``lower_bound`` are exact rationals; ``ratio`` is their float
    quotient (``None`` when the lower bound is zero or the solve
    errored).  ``cached`` marks results served from the cache or from
    intra-batch deduplication rather than a fresh solve.
    """

    index: int
    name: str
    key: str
    algorithm: str
    chosen: str | None
    instance_kind: str
    n: int
    m: int
    edges: int
    makespan: Fraction | None
    lower_bound: Fraction | None
    ratio: float | None
    feasible: bool
    wall_time_s: float
    cached: bool = False
    error: str | None = None
    certificate: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSONL-ready record (rationals as ``"num/den"`` strings)."""
        return {
            "format": RESULT_FORMAT,
            "kind": "batch_result",
            "index": self.index,
            "name": self.name,
            "key": self.key,
            "algorithm": self.algorithm,
            "chosen": self.chosen,
            "instance_kind": self.instance_kind,
            "n": self.n,
            "m": self.m,
            "edges": self.edges,
            "makespan": _frac_str(self.makespan),
            "lower_bound": _frac_str(self.lower_bound),
            "ratio": self.ratio,
            "feasible": self.feasible,
            "wall_time_s": self.wall_time_s,
            "cached": self.cached,
            "error": self.error,
            "certificate": self.certificate,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BatchResult":
        """Inverse of :meth:`to_dict`."""
        if data.get("kind") != "batch_result":
            raise InvalidInstanceError(
                f"expected kind 'batch_result', found {data.get('kind')!r}"
            )
        return cls(
            index=int(data["index"]),
            name=str(data["name"]),
            key=str(data["key"]),
            algorithm=str(data["algorithm"]),
            chosen=data.get("chosen"),
            instance_kind=str(data["instance_kind"]),
            n=int(data["n"]),
            m=int(data["m"]),
            edges=int(data["edges"]),
            makespan=_frac_parse(data.get("makespan")),
            lower_bound=_frac_parse(data.get("lower_bound")),
            ratio=data.get("ratio"),
            feasible=bool(data.get("feasible", False)),
            wall_time_s=float(data.get("wall_time_s", 0.0)),
            cached=bool(data.get("cached", False)),
            error=data.get("error"),
            certificate=data.get("certificate"),
        )


@dataclass
class BatchStats:
    """Aggregate counters for one :meth:`BatchRunner.run` pass.

    ``wall_time_s`` sums the *solver* time of fresh solves (cache hits
    contribute nothing), i.e. the compute the batch actually spent.
    """

    total: int = 0
    solved: int = 0
    cached: int = 0
    errors: int = 0
    wall_time_s: float = 0.0


def _solve_task(
    task: tuple[str, dict[str, Any], str, bool]
) -> tuple[str, dict[str, Any]]:
    """Worker entry point: solve one deduplicated task.

    Must stay module-level (picklable).  Returns the cache-shape record;
    the driver stamps per-submission fields (index, name, cached).  With
    the certify flag set, the schedule is audited through
    :func:`repro.certify.certify_schedule` and the certificate dict is
    stored on the record (certification time is not billed to the
    solver's ``wall_time_s``).
    """
    key, payload, algorithm, certify = task
    instance = instance_from_dict(payload)
    record: dict[str, Any] = {
        "format": RESULT_FORMAT,
        "kind": "batch_result",
        "index": -1,
        "name": "",
        "key": key,
        "algorithm": algorithm,
        "chosen": None,
        "instance_kind": str(payload.get("kind")),
        "n": instance.n,
        "m": instance.m,
        "edges": instance.graph.edge_count,
        "makespan": None,
        "lower_bound": None,
        "ratio": None,
        "feasible": False,
        "wall_time_s": 0.0,
        "cached": False,
        "error": None,
        "certificate": None,
    }
    try:
        chosen = auto_choice(instance) if algorithm == "auto" else algorithm
        record["chosen"] = chosen
        start = perf_counter()
        schedule = solve(instance, algorithm=chosen)
        record["wall_time_s"] = perf_counter() - start
    except ReproError as exc:
        record["error"] = str(exc)
        return key, record
    record["feasible"] = schedule.is_feasible()
    record["makespan"] = _frac_str(schedule.makespan)
    lower = instance_lower_bound(instance)
    record["lower_bound"] = _frac_str(lower)
    if lower is not None and lower > 0 and schedule.makespan is not None:
        record["ratio"] = float(schedule.makespan / lower)
    if certify:
        from repro.certify import certify_schedule

        record["certificate"] = certify_schedule(
            schedule, algorithm=chosen
        ).to_dict()
    return key, record


def _shutdown_pool(pool: multiprocessing.pool.Pool) -> None:
    """Terminate and reap one worker pool (module-level: finalizer-safe)."""
    pool.terminate()
    pool.join()


class BatchRunner:
    """Drive many solves through dedup, cache, and a worker pool.

    Parameters
    ----------
    algorithm:
        Default algorithm for items that do not carry their own
        (``"auto"`` applies the registry's dispatch policy per instance).
    workers:
        Process count.  ``1`` (default) solves in-process; ``>1`` fans
        tasks out over a :class:`multiprocessing.Pool`.
    chunk_jobs:
        How many submissions are drawn from the input iterable per
        scheduling round; bounds driver memory on huge streams.
    cache:
        ``None`` (dedup only within the run), a path (JSONL-backed
        persistent cache), or a ready cache object — a
        :class:`ResultCache`, a lazily-loaded
        :class:`~repro.runtime.cache.ShardedResultCache`, or anything
        with their ``in``/``record``/``put`` protocol.
    persistent_pool:
        Keep the worker pool alive between :meth:`run` calls (default).
        Forking a fresh pool costs tens of milliseconds per run, which
        dominates sweeps of many small batches (the benchmark harness's
        shape); the persistent pool pays that once.  Workers hold no
        task state between chunks, so results are unaffected — the
        equivalence tests pin this down.  ``False`` restores the old
        pool-per-run behaviour (and is what ``repro perf --target
        batch_fanout`` measures against).  Either way the pool is torn
        down by :meth:`close`, ``with`` exit, or garbage collection.
    certify:
        Audit every produced schedule through :mod:`repro.certify` and
        store the certificate on the result record (per-task
        ``BatchTask.certify`` flags opt individual items in without
        this batch-wide switch).  Certify tasks hash to different cache
        keys than plain solves, so warm non-certify caches are never
        answered with (or poisoned by) certificate-carrying records.

    Accepted input items (mixable within one iterable):

    * a :class:`SchedulingInstance`;
    * a ``(name, instance)`` pair;
    * a :class:`BatchTask` / ``(name, payload_dict, algorithm)`` triple;
    * a raw serialised instance dict.
    """

    def __init__(
        self,
        algorithm: str = "auto",
        workers: int = 1,
        chunk_jobs: int = 256,
        cache: ResultCache | str | Path | None = None,
        persistent_pool: bool = True,
        certify: bool = False,
    ) -> None:
        if workers < 1:
            raise InvalidInstanceError(f"workers must be >= 1, got {workers}")
        if chunk_jobs < 1:
            raise InvalidInstanceError(f"chunk_jobs must be >= 1, got {chunk_jobs}")
        self.algorithm = algorithm
        self.workers = workers
        self.chunk_jobs = chunk_jobs
        self.persistent_pool = persistent_pool
        self.certify = certify
        if cache is None or isinstance(cache, (str, Path)):
            self.cache: Any = ResultCache(cache)
        else:
            self.cache = cache
        self.stats = BatchStats()
        self._pool: multiprocessing.pool.Pool | None = None
        self._pool_finalizer: weakref.finalize | None = None

    # ------------------------------------------------------------------ #
    # worker-pool lifecycle
    # ------------------------------------------------------------------ #

    def _acquire_pool(self) -> multiprocessing.pool.Pool | None:
        """The pool for one :meth:`run` (``None`` when in-process).

        With ``persistent_pool`` the pool is created lazily on first use
        and reused by every subsequent run; a :mod:`weakref` finalizer
        guarantees the worker processes die with the runner even when
        :meth:`close` is never called.
        """
        if self.workers == 1:
            return None
        if not self.persistent_pool:
            return multiprocessing.Pool(self.workers)
        if self._pool is None:
            pool = multiprocessing.Pool(self.workers)
            self._pool = pool
            self._pool_finalizer = weakref.finalize(self, _shutdown_pool, pool)
        return self._pool

    def worker_pool(self) -> multiprocessing.pool.Pool | None:
        """The runner's pool, for co-operating engines (``None`` in-process).

        :func:`repro.engine.portfolio.portfolio_solve` races its
        candidates on this pool so portfolio execution shares the
        runner's worker lifecycle (persistent across calls, torn down by
        :meth:`close`) instead of forking its own.  With ``workers=1``
        or ``persistent_pool=False`` there is no long-lived pool to
        share and callers fall back to sequential execution.
        """
        if self.workers == 1 or not self.persistent_pool:
            return None
        return self._acquire_pool()

    def close(self) -> None:
        """Terminate the persistent worker pool (idempotent).

        In-process runners (``workers=1``) and already-closed runners
        accept the call as a no-op; the runner itself stays usable — the
        next parallel :meth:`run` simply forks a fresh pool.
        """
        if self._pool is not None:
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
            _shutdown_pool(self._pool)
            self._pool = None

    def __enter__(self) -> "BatchRunner":
        """``with BatchRunner(...) as runner:`` — pool dies at exit."""
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # input normalisation
    # ------------------------------------------------------------------ #

    def _normalize(self, item: Any, index: int) -> BatchTask:
        if isinstance(item, BatchTask):
            return item
        if isinstance(item, SchedulingInstance):
            return BatchTask(f"instance-{index}", instance_to_dict(item), None)
        if isinstance(item, dict):
            return BatchTask(f"instance-{index}", item, None)
        if isinstance(item, tuple):
            if len(item) == 2:
                name, inst = item
                payload = inst if isinstance(inst, dict) else instance_to_dict(inst)
                return BatchTask(str(name), payload, None)
            if len(item) == 3:
                name, inst, algorithm = item
                payload = inst if isinstance(inst, dict) else instance_to_dict(inst)
                return BatchTask(str(name), payload, algorithm)
        raise InvalidInstanceError(
            f"cannot interpret batch item {index}: {type(item).__name__}"
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(self, items: Iterable[Any]) -> Iterator[BatchResult]:
        """Yield one :class:`BatchResult` per input item, in input order.

        Parameters
        ----------
        items:
            Any mix of the accepted item shapes (see the class
            docstring); consumed lazily in ``chunk_jobs``-sized rounds.
            Within each round, unseen tasks are solved (possibly in
            parallel) before any of the round's results are yielded.

        Yields
        ------
        BatchResult
            One structured record per submission, in submission order;
            repeats and cache hits carry ``cached=True``.

        Notes
        -----
        Resets :attr:`stats`.  With ``persistent_pool`` (default) the
        worker pool survives the call and is reused by the next run;
        call :meth:`close` (or use the runner as a context manager) to
        tear it down deterministically.
        """
        self.stats = BatchStats()
        iterator = enumerate(items)
        pool = self._acquire_pool()
        owned = pool is not None and not self.persistent_pool
        try:
            while True:
                chunk = list(islice(iterator, self.chunk_jobs))
                if not chunk:
                    break
                yield from self._run_chunk(chunk, pool)
        finally:
            if owned:
                _shutdown_pool(pool)

    def _run_chunk(
        self,
        chunk: list[tuple[int, Any]],
        pool: multiprocessing.pool.Pool | None,
    ) -> Iterator[BatchResult]:
        prepared: list[tuple[int, BatchTask, str, bool]] = []
        to_solve: list[tuple[str, dict[str, Any], str, bool]] = []
        scheduled: set[str] = set()
        for index, item in chunk:
            task = self._normalize(item, index)
            algorithm = task.algorithm or self.algorithm
            certify = task.certify or self.certify
            key = task_key(task.payload, algorithm, certify=certify)
            fresh = key not in self.cache and key not in scheduled
            if fresh:
                scheduled.add(key)
                to_solve.append((key, task.payload, algorithm, certify))
            prepared.append((index, task, key, fresh))

        if to_solve:
            if pool is None:
                solved = map(_solve_task, to_solve)
            else:
                chunksize = max(1, len(to_solve) // (self.workers * 4))
                solved = pool.imap_unordered(_solve_task, to_solve, chunksize)
            for key, record in solved:
                self.cache.put(key, record)

        for index, task, key, fresh in prepared:
            record = dict(self.cache.record(key))
            record["index"] = index
            record["name"] = task.name
            record["cached"] = not fresh
            if not fresh:
                record["wall_time_s"] = 0.0
            result = BatchResult.from_dict(record)
            self.stats.total += 1
            if fresh:
                self.stats.solved += 1
                self.stats.wall_time_s += result.wall_time_s
            else:
                self.stats.cached += 1
            if result.error is not None:
                self.stats.errors += 1
            yield result

    # ------------------------------------------------------------------ #
    # convenience drivers
    # ------------------------------------------------------------------ #

    def run_to_list(self, items: Iterable[Any]) -> list[BatchResult]:
        """Materialise :meth:`run`.

        Parameters
        ----------
        items:
            Forwarded to :meth:`run`.

        Returns
        -------
        list of BatchResult
            All results, in submission order.
        """
        return list(self.run(items))

    def run_to_jsonl(
        self,
        items: Iterable[Any],
        path: str | Path,
        append: bool = False,
    ) -> BatchStats:
        """Stream results to a JSONL file as they are produced.

        Parameters
        ----------
        items:
            Forwarded to :meth:`run`.
        path:
            Output JSONL file; one :meth:`BatchResult.to_dict` record
            per line.
        append:
            Keep existing lines instead of truncating (default
            truncates).

        Returns
        -------
        BatchStats
            The final :attr:`stats` of the run.

        Notes
        -----
        One file handle spans the whole run, flushed per record, so a
        concurrent reader always sees complete lines.
        """
        out = Path(path)
        with out.open("a" if append else "w", encoding="utf-8") as fh:
            for result in self.run(items):
                fh.write(dump_jsonl_line(result.to_dict()) + "\n")
                fh.flush()
        return self.stats
