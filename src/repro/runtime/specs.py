"""Declarative batch specs: JSON descriptions of instance collections.

``python -m repro batch specs.json`` needs a way to describe hundreds of
instances without shipping hundreds of files.  A spec file
(``"format": "repro/batch-spec/v1"`` or ``".../v2"``) lists entries of
three shapes::

    {"format": "repro/batch-spec/v1",
     "defaults": {"algorithm": "auto", "speeds": "3,2,1", "jobs": "unit"},
     "instances": [
       {"name": "pinned", "instance": { ...instance_to_dict payload... }},
       {"path": "instances/hospital.json", "algorithm": "sqrt_approx"},
       {"family": "gnnp", "n": 20, "p": 0.15, "seed": 7, "count": 50}
     ]}

* ``instance`` — an inline serialised instance (:mod:`repro.io` schema);
* ``path`` — an instance JSON on disk, resolved relative to the spec;
* ``family`` — a generated instance from the same graph families the
  ``generate`` command offers, replicated ``count`` times with
  consecutive seeds (``seed``, ``seed + 1``, ...), so one line yields a
  whole deterministic sweep.

Format **v2** additionally lets a ``family`` entry (or ``defaults``)
carry a ``machines`` block describing the machine environment through
:mod:`repro.workloads` — this is how unrelated (``R``) sweeps reach the
batch engine — and a ``"certify": true`` flag that audits every
produced schedule through :mod:`repro.certify` (certificate fields land
on the result records and in the cache)::

    {"format": "repro/batch-spec/v2",
     "defaults": {"machines": {"kind": "unrelated", "model": "correlated",
                               "m": 3},
                  "certify": true},
     "instances": [
       {"family": "gnnp", "n": 12, "p": 0.2, "seed": 0, "count": 25},
       {"family": "crown", "n": 8, "count": 10,
        "machines": {"kind": "uniform", "profile": "geometric", "m": 4}}
     ]}

v1 files keep loading unchanged (``machines`` and ``certify`` are
rejected there).

Format **v3** generalises the conflict graph beyond bipartite.  A new
``graph`` entry shape describes the graph family declaratively —
including the non-bipartite families of
:mod:`repro.workloads.conflict_graphs` — and uniform ``machines``
blocks may carry an ``eligibility`` sub-block restricting which
machines each job may run on::

    {"format": "repro/batch-spec/v3",
     "instances": [
       {"graph": {"family": "complete_multipartite", "sizes": [2, 2, 3],
                  "free": 1},
        "speeds": "3,2,1", "certify": true},
       {"graph": {"family": "block", "n": 12, "max_block": 4},
        "count": 5, "seed": 0,
        "machines": {"kind": "uniform", "profile": "geometric", "m": 4,
                     "eligibility": {"choices": 3}}}
     ]}

v1 and v2 files keep loading unchanged (``graph`` entries and
``eligibility`` are rejected below v3).

``defaults`` are merged under every entry; the entry *shape* keys
(``instance`` / ``path`` / ``family``) must stay on the entries
themselves.  Expansion is eager and deterministic: the same spec always
produces the same :class:`~repro.runtime.batch.BatchTask` list with
unique task names (colliding names are disambiguated by entry index),
which is what makes batch caching across runs effective.
"""

from __future__ import annotations

from collections import Counter
from pathlib import Path
from typing import Any, Callable

from repro.exceptions import InvalidInstanceError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.conflict import ConflictGraph
from repro.io import instance_to_dict, load_json
from repro.random_graphs.gilbert import gnnp
from repro.runtime.batch import BatchTask
from repro.scheduling.instance import UniformInstance
from repro.workloads import build_machines_instance, parse_jobs, parse_speeds
from repro.workloads.conflict_graphs import (
    block_chain,
    complete_multipartite_graph,
    random_block_graph,
    random_complete_multipartite,
)

__all__ = [
    "SPEC_FORMAT",
    "SPEC_FORMAT_V2",
    "SPEC_FORMAT_V3",
    "SPEC_FORMATS",
    "GRAPH_FAMILIES",
    "CONFLICT_FAMILIES",
    "build_family_graph",
    "build_conflict_graph",
    "parse_speeds",
    "parse_jobs",
    "expand_specs",
    "load_spec_file",
]

SPEC_FORMAT = "repro/batch-spec/v1"
SPEC_FORMAT_V2 = "repro/batch-spec/v2"
SPEC_FORMAT_V3 = "repro/batch-spec/v3"
SPEC_FORMATS = (SPEC_FORMAT, SPEC_FORMAT_V2, SPEC_FORMAT_V3)

GRAPH_FAMILIES = (
    "gnnp",
    "complete_bipartite",
    "crown",
    "path",
    "cycle",
    "star",
    "matching",
    "tree",
    "forest",
    "empty",
    "degree_bounded",
)

# spec keys that configure the entry rather than the graph family
_ENTRY_KEYS = frozenset(
    {
        "name",
        "algorithm",
        "count",
        "speeds",
        "jobs",
        "family",
        "instance",
        "path",
        "graph",
        "machines",
        "certify",
    }
)
_FAMILY_KEYS = frozenset({"n", "b", "p", "max_degree", "trees", "seed"})
_SHAPE_KEYS = frozenset({"instance", "path", "family", "graph"})

CONFLICT_FAMILIES = ("complete_multipartite", "block")

# keys a v3 'graph' block may carry, per conflict family
_GRAPH_BLOCK_KEYS = {
    "complete_multipartite": frozenset(
        {"family", "sizes", "free", "n", "parts"}
    ),
    "block": frozenset({"family", "chain", "n", "max_block"}),
}


def build_family_graph(
    family: str,
    n: int,
    *,
    b: int | None = None,
    p: float = 0.1,
    max_degree: int = 4,
    trees: int = 3,
    seed: int | None = None,
) -> BipartiteGraph:
    """Build one graph from a named family (shared with the CLI).

    Parameters
    ----------
    family:
        One of :data:`GRAPH_FAMILIES`.
    n:
        Primary size parameter (family-specific meaning).
    b:
        Second size for the two-sided families; defaults to ``n``.
    p:
        Edge probability (``gnnp`` only).
    max_degree:
        Degree bound (``degree_bounded`` only).
    trees:
        Tree count (``forest`` only).
    seed:
        Seed for the randomised families; deterministic per seed.

    Returns
    -------
    repro.graphs.bipartite.BipartiteGraph
        The constructed graph.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        If ``family`` is not a known name.
    """
    second = n if b is None else b
    if family == "gnnp":
        return gnnp(n, p, seed=seed)
    if family == "complete_bipartite":
        return generators.complete_bipartite(n, second)
    if family == "crown":
        return generators.crown(n)
    if family == "path":
        return generators.path_graph(n)
    if family == "cycle":
        return generators.even_cycle(n)
    if family == "star":
        return generators.star(n)
    if family == "matching":
        return generators.matching_graph(n)
    if family == "tree":
        return generators.random_tree(n, seed=seed)
    if family == "forest":
        return generators.random_forest(n, trees, seed=seed)
    if family == "empty":
        return generators.empty_graph(n)
    if family == "degree_bounded":
        return generators.random_bipartite_degree_bounded(
            n, second, max_degree, seed=seed
        )
    known = ", ".join(GRAPH_FAMILIES)
    raise InvalidInstanceError(f"unknown graph family {family!r}; known: {known}")


def build_conflict_graph(
    spec: dict[str, Any], *, seed: int | None = None
) -> ConflictGraph:
    """Build one conflict graph from a v3 ``graph`` block.

    ``spec["family"]`` may be any bipartite family from
    :data:`GRAPH_FAMILIES` (same parameters as :func:`build_family_graph`)
    or one of :data:`CONFLICT_FAMILIES`:

    * ``complete_multipartite`` — explicit ``sizes`` (class sizes, plus
      optional ``free`` isolated vertices), or random via ``n`` + optional
      ``parts``/``free``;
    * ``block`` — explicit ``chain`` (clique sizes chained at cut
      vertices), or random via ``n`` + optional ``max_block``.

    ``seed`` comes from the *entry* (so ``count`` replicas sweep
    consecutive seeds); a ``seed`` key inside the block is rejected.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        On an unknown family, unknown/missing keys, or malformed values.
    """
    if not isinstance(spec, dict):
        raise InvalidInstanceError("'graph' must be a JSON object")
    family = spec.get("family")
    if "seed" in spec:
        raise InvalidInstanceError(
            "'graph' block: put 'seed' on the entry, not inside the block "
            "(count replicas sweep consecutive entry seeds)"
        )
    if family in GRAPH_FAMILIES:
        allowed = frozenset({"family"}) | (_FAMILY_KEYS - {"seed"})
    else:
        allowed = _GRAPH_BLOCK_KEYS.get(family)
    if allowed is None:
        known = ", ".join(GRAPH_FAMILIES + CONFLICT_FAMILIES)
        raise InvalidInstanceError(
            f"unknown graph family {family!r}; known: {known}"
        )
    unknown = set(spec) - allowed
    if unknown:
        raise InvalidInstanceError(
            f"'graph' block ({family}): unknown keys {sorted(unknown)}"
        )
    try:
        if family in GRAPH_FAMILIES:
            return build_family_graph(
                family,
                int(spec.get("n", 20)),
                b=spec.get("b"),
                p=float(spec.get("p", 0.1)),
                max_degree=int(spec.get("max_degree", 4)),
                trees=int(spec.get("trees", 3)),
                seed=seed,
            )
        if family == "complete_multipartite":
            free = int(spec.get("free", 0))
            if "sizes" in spec:
                return complete_multipartite_graph(
                    [int(x) for x in spec["sizes"]], free=free
                )
            if "n" not in spec:
                raise InvalidInstanceError(
                    "'complete_multipartite' graph block needs explicit "
                    "'sizes' or a vertex count 'n'"
                )
            return random_complete_multipartite(
                int(spec["n"]),
                int(spec.get("parts", 2)),
                free=free,
                seed=seed,
            )
        # family == "block"
        if "chain" in spec:
            return block_chain([int(x) for x in spec["chain"]])
        if "n" not in spec:
            raise InvalidInstanceError(
                "'block' graph block needs explicit 'chain' or a vertex "
                "count 'n'"
            )
        return random_block_graph(
            int(spec["n"]),
            max_block=int(spec.get("max_block", 4)),
            seed=seed,
        )
    except InvalidInstanceError:
        raise
    except (TypeError, ValueError) as exc:
        raise InvalidInstanceError(
            f"malformed 'graph' block ({family}): {exc}"
        ) from exc


def _machines_label(machines: dict[str, Any]) -> str:
    """The tag default task names (and per-model aggregation) group on.

    Mirrors the builder's defaults: an unrelated block without an explicit
    ``model`` builds ``uniform_pij``, so it must be *labelled* that too.
    """
    kind = machines.get("kind")
    if kind == "unrelated":
        return str(machines.get("model", "uniform_pij"))
    label = machines.get("model") or machines.get("profile") or kind
    return str(label)


def _entry_certify(entry: dict[str, Any], index: int, *, v2: bool) -> bool:
    """The entry's ``certify`` flag (defaults merged), validated.

    Like ``machines``, the key's mere *presence* is a v2 feature — a v1
    file carrying ``"certify": false`` is rejected, not ignored.
    """
    if "certify" not in entry or entry["certify"] is None:
        return False
    if not v2:
        raise InvalidInstanceError(
            f"spec entry {index}: 'certify' needs format {SPEC_FORMAT_V2!r}"
        )
    certify = entry["certify"]
    if not isinstance(certify, bool):
        raise InvalidInstanceError(
            f"spec entry {index}: 'certify' must be true or false"
        )
    return certify


def _generated_tasks(
    entry: dict[str, Any],
    index: int,
    build_graph: Callable[[int], ConflictGraph],
    base_label: Callable[[ConflictGraph], str],
    *,
    v2: bool,
    v3: bool,
) -> list[BatchTask]:
    """Shared expansion loop for the generated entry shapes.

    ``build_graph(seed)`` constructs the replica's conflict graph;
    ``base_label(graph)`` is the default task-name stem (machines blocks
    prefix their model label onto it).
    """
    machines = entry.get("machines")
    if machines is not None:
        if not v2:
            raise InvalidInstanceError(
                f"spec entry {index}: 'machines' needs format {SPEC_FORMAT_V2!r}"
            )
        if not isinstance(machines, dict):
            raise InvalidInstanceError(
                f"spec entry {index}: 'machines' must be a JSON object"
            )
        if "speeds" in entry:
            raise InvalidInstanceError(
                f"spec entry {index}: with a 'machines' block, put speeds "
                "inside it ({'kind': 'uniform', 'speeds': ...})"
            )
        if "eligibility" in machines and not v3:
            raise InvalidInstanceError(
                f"spec entry {index}: machine 'eligibility' needs format "
                f"{SPEC_FORMAT_V3!r}"
            )
    count = int(entry.get("count", 1))
    if count < 1:
        raise InvalidInstanceError(f"spec entry {index}: count must be >= 1")
    base_seed = int(entry.get("seed", 0))
    algorithm = entry.get("algorithm")
    certify = _entry_certify(entry, index, v2=v2)
    tasks: list[BatchTask] = []
    for replica in range(count):
        seed = base_seed + replica
        graph = build_graph(seed)
        if machines is None:
            jobs = parse_jobs(entry.get("jobs", "unit"), graph.n, seed)
            speeds = parse_speeds(entry.get("speeds", "1,1,1"))
            instance = UniformInstance(graph, jobs, speeds)
            default_base = base_label(graph)
        else:
            # no explicit job vector -> p=None, so unrelated models keep
            # their documented seeded base-requirement draw (uniform kinds
            # default to unit jobs inside the builder)
            jobs_spec = entry.get("jobs")
            jobs = (
                None
                if jobs_spec is None
                else parse_jobs(jobs_spec, graph.n, seed)
            )
            instance = build_machines_instance(
                graph, machines, p=jobs, seed=seed
            )
            default_base = f"{_machines_label(machines)}/{base_label(graph)}"
        base_name = entry.get("name", default_base)
        name = base_name if count == 1 else f"{base_name}-s{seed}"
        tasks.append(
            BatchTask(name, instance_to_dict(instance), algorithm, certify)
        )
    return tasks


def _family_tasks(
    entry: dict[str, Any], index: int, *, v2: bool, v3: bool
) -> list[BatchTask]:
    family = entry["family"]
    unknown = set(entry) - _ENTRY_KEYS - _FAMILY_KEYS
    if unknown:
        raise InvalidInstanceError(
            f"spec entry {index}: unknown keys {sorted(unknown)}"
        )
    n = int(entry.get("n", 20))

    def build(seed: int) -> ConflictGraph:
        return build_family_graph(
            family,
            n,
            b=entry.get("b"),
            p=float(entry.get("p", 0.1)),
            max_degree=int(entry.get("max_degree", 4)),
            trees=int(entry.get("trees", 3)),
            seed=seed,
        )

    return _generated_tasks(
        entry, index, build, lambda graph: f"{family}-n{n}", v2=v2, v3=v3
    )


def _graph_tasks(
    entry: dict[str, Any], index: int, *, v2: bool, v3: bool
) -> list[BatchTask]:
    if not v3:
        raise InvalidInstanceError(
            f"spec entry {index}: 'graph' entries need format "
            f"{SPEC_FORMAT_V3!r}"
        )
    spec = entry["graph"]
    unknown = set(entry) - _ENTRY_KEYS - {"seed"}
    if unknown:
        raise InvalidInstanceError(
            f"spec entry {index}: unknown keys {sorted(unknown)} "
            "(graph parameters go inside the 'graph' block)"
        )
    family = spec.get("family") if isinstance(spec, dict) else None

    def build(seed: int) -> ConflictGraph:
        return build_conflict_graph(spec, seed=seed)

    return _generated_tasks(
        entry, index, build, lambda graph: f"{family}-n{graph.n}", v2=v2, v3=v3
    )


def _dedupe_task_names(
    indexed: list[tuple[int, BatchTask]]
) -> list[BatchTask]:
    """Make task names unique: colliding names get an entry-index suffix.

    Without this, two overlapping ``family`` entries emit identical names
    (both ``{"family": "path", "n": 4, "count": 2, "seed": 0}`` entries
    yield ``path-n4-s0`` / ``path-n4-s1``) and the JSONL result rows
    become ambiguous.
    """
    counts = Counter(task.name for _, task in indexed)
    out: list[BatchTask] = []
    for index, task in indexed:
        if counts[task.name] > 1:
            task = task._replace(name=f"{task.name}-e{index}")
        out.append(task)
    if len({task.name for task in out}) != len(out):
        raise InvalidInstanceError(
            "spec task names collide even after entry-index disambiguation; "
            "give the overlapping entries distinct 'name's"
        )
    return out


def expand_specs(
    data: dict[str, Any], base_dir: str | Path = "."
) -> list[BatchTask]:
    """Expand a parsed spec document into concrete batch tasks.

    Parameters
    ----------
    data:
        The parsed JSON object of a batch-spec file (format v1 or v2).
    base_dir:
        Directory that entry ``path`` references resolve against.

    Returns
    -------
    list of BatchTask
        One task per expanded instance (``count`` replicas expand to
        consecutive seeds), in document order.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        On an unsupported format tag or a malformed entry.
    """
    if not isinstance(data, dict):
        raise InvalidInstanceError("spec must be a JSON object")
    fmt = data.get("format", SPEC_FORMAT)
    if fmt not in SPEC_FORMATS:
        supported = " or ".join(repr(f) for f in SPEC_FORMATS)
        raise InvalidInstanceError(
            f"unsupported spec format {fmt!r} (this build reads {supported})"
        )
    v3 = fmt == SPEC_FORMAT_V3
    v2 = fmt == SPEC_FORMAT_V2 or v3
    entries = data.get("instances")
    if not isinstance(entries, list) or not entries:
        raise InvalidInstanceError("spec needs a non-empty 'instances' list")
    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        raise InvalidInstanceError("'defaults' must be a JSON object")
    shadowed = _SHAPE_KEYS & set(defaults)
    if shadowed:
        raise InvalidInstanceError(
            f"'defaults' must not contain the entry-shape keys "
            f"{sorted(shadowed)}; they would shadow every entry's own "
            "shape — move them into the individual entries"
        )
    base = Path(base_dir)
    indexed: list[tuple[int, BatchTask]] = []
    for index, raw in enumerate(entries):
        if not isinstance(raw, dict):
            raise InvalidInstanceError(f"spec entry {index} must be an object")
        entry = {**defaults, **raw}
        algorithm = entry.get("algorithm")
        if "instance" in entry:
            if "machines" in raw:
                raise InvalidInstanceError(
                    f"spec entry {index}: 'machines' only applies to "
                    "'family' entries (inline instances fix their own "
                    "machine data)"
                )
            certify = _entry_certify(entry, index, v2=v2)
            name = entry.get("name", f"inline-{index}")
            indexed.append(
                (index, BatchTask(name, entry["instance"], algorithm, certify))
            )
        elif "path" in entry:
            if "machines" in raw:
                raise InvalidInstanceError(
                    f"spec entry {index}: 'machines' only applies to "
                    "'family' entries (on-disk instances fix their own "
                    "machine data)"
                )
            certify = _entry_certify(entry, index, v2=v2)
            path = base / entry["path"]
            name = entry.get("name", Path(entry["path"]).stem)
            indexed.append(
                (index, BatchTask(name, load_json(path), algorithm, certify))
            )
        elif "family" in entry:
            indexed.extend(
                (index, task)
                for task in _family_tasks(entry, index, v2=v2, v3=v3)
            )
        elif "graph" in entry:
            indexed.extend(
                (index, task)
                for task in _graph_tasks(entry, index, v2=v2, v3=v3)
            )
        else:
            raise InvalidInstanceError(
                f"spec entry {index} needs 'instance', 'path', 'family', "
                "or 'graph'"
            )
    return _dedupe_task_names(indexed)


def load_spec_file(path: str | Path) -> list[BatchTask]:
    """Read and expand a spec file (entry paths resolve next to it).

    Parameters
    ----------
    path:
        The spec JSON file.

    Returns
    -------
    list of BatchTask
        See :func:`expand_specs`.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        If the file is not valid JSON, or the spec is malformed.
    """
    import json

    spec_path = Path(path)
    try:
        data = load_json(spec_path)
    except json.JSONDecodeError as exc:
        raise InvalidInstanceError(f"spec {spec_path} is not valid JSON: {exc}")
    return expand_specs(data, spec_path.parent)
