"""Declarative batch specs: JSON descriptions of instance collections.

``python -m repro batch specs.json`` needs a way to describe hundreds of
instances without shipping hundreds of files.  A spec file
(``"format": "repro/batch-spec/v1"``) lists entries of three shapes::

    {"format": "repro/batch-spec/v1",
     "defaults": {"algorithm": "auto", "speeds": "3,2,1", "jobs": "unit"},
     "instances": [
       {"name": "pinned", "instance": { ...instance_to_dict payload... }},
       {"path": "instances/hospital.json", "algorithm": "sqrt_approx"},
       {"family": "gnnp", "n": 20, "p": 0.15, "seed": 7, "count": 50}
     ]}

* ``instance`` — an inline serialised instance (:mod:`repro.io` schema);
* ``path`` — an instance JSON on disk, resolved relative to the spec;
* ``family`` — a generated instance from the same graph families the
  ``generate`` command offers, replicated ``count`` times with
  consecutive seeds (``seed``, ``seed + 1``, ...), so one line yields a
  whole deterministic sweep.

``defaults`` are merged under every entry.  Expansion is eager and
deterministic: the same spec always produces the same
:class:`~repro.runtime.batch.BatchTask` list, which is what makes batch
caching across runs effective.
"""

from __future__ import annotations

from fractions import Fraction
from pathlib import Path
from typing import Any, Sequence

from repro.exceptions import InvalidInstanceError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.io import instance_to_dict, load_json
from repro.random_graphs.gilbert import gnnp
from repro.runtime.batch import BatchTask
from repro.scheduling.instance import UniformInstance

__all__ = [
    "SPEC_FORMAT",
    "GRAPH_FAMILIES",
    "build_family_graph",
    "parse_speeds",
    "parse_jobs",
    "expand_specs",
    "load_spec_file",
]

SPEC_FORMAT = "repro/batch-spec/v1"

GRAPH_FAMILIES = (
    "gnnp",
    "complete_bipartite",
    "crown",
    "path",
    "cycle",
    "star",
    "matching",
    "tree",
    "forest",
    "empty",
    "degree_bounded",
)

# spec keys that configure the entry rather than the graph family
_ENTRY_KEYS = frozenset(
    {"name", "algorithm", "count", "speeds", "jobs", "family", "instance", "path"}
)
_FAMILY_KEYS = frozenset({"n", "b", "p", "max_degree", "trees", "seed"})


def build_family_graph(
    family: str,
    n: int,
    *,
    b: int | None = None,
    p: float = 0.1,
    max_degree: int = 4,
    trees: int = 3,
    seed: int | None = None,
) -> BipartiteGraph:
    """Build one graph from a named family (shared with the CLI).

    ``n`` is the primary size parameter; ``b`` defaults to ``n`` for the
    two-sided families.
    """
    second = n if b is None else b
    if family == "gnnp":
        return gnnp(n, p, seed=seed)
    if family == "complete_bipartite":
        return generators.complete_bipartite(n, second)
    if family == "crown":
        return generators.crown(n)
    if family == "path":
        return generators.path_graph(n)
    if family == "cycle":
        return generators.even_cycle(n)
    if family == "star":
        return generators.star(n)
    if family == "matching":
        return generators.matching_graph(n)
    if family == "tree":
        return generators.random_tree(n, seed=seed)
    if family == "forest":
        return generators.random_forest(n, trees, seed=seed)
    if family == "empty":
        return generators.empty_graph(n)
    if family == "degree_bounded":
        return generators.random_bipartite_degree_bounded(
            n, second, max_degree, seed=seed
        )
    known = ", ".join(GRAPH_FAMILIES)
    raise InvalidInstanceError(f"unknown graph family {family!r}; known: {known}")


def parse_speeds(value: str | Sequence[Any]) -> list[Fraction]:
    """Machine speeds from ``"3,3/2,1"`` or a JSON list, fastest first."""
    if isinstance(value, str):
        parts: Sequence[Any] = [part.strip() for part in value.split(",")]
    else:
        parts = value
    speeds = sorted((Fraction(str(part)) for part in parts), reverse=True)
    if not speeds:
        raise InvalidInstanceError("speeds must name at least one machine")
    return speeds


def parse_jobs(value: str | Sequence[int], n: int, seed: int | None) -> list[int]:
    """Processing requirements for ``n`` jobs.

    ``"unit"`` (all ones), an explicit integer list, or one of the named
    weight profiles from :func:`repro.analysis.suites.job_weight_profile`
    (``"uniform"``, ``"heavy_tailed"``, ``"one_giant"``) drawn with the
    entry's seed.
    """
    if isinstance(value, str):
        if value == "unit":
            return [1] * n
        if value in ("uniform", "heavy_tailed", "one_giant"):
            from repro.analysis.suites import job_weight_profile

            return list(job_weight_profile(n, value, seed=seed))
        raise InvalidInstanceError(
            f"unknown jobs spec {value!r}; use 'unit', 'uniform', "
            "'heavy_tailed', 'one_giant', or an integer list"
        )
    return [int(x) for x in value]


def _family_tasks(entry: dict[str, Any], index: int) -> list[BatchTask]:
    family = entry["family"]
    unknown = set(entry) - _ENTRY_KEYS - _FAMILY_KEYS
    if unknown:
        raise InvalidInstanceError(
            f"spec entry {index}: unknown keys {sorted(unknown)}"
        )
    count = int(entry.get("count", 1))
    if count < 1:
        raise InvalidInstanceError(f"spec entry {index}: count must be >= 1")
    base_seed = int(entry.get("seed", 0))
    algorithm = entry.get("algorithm")
    n = int(entry.get("n", 20))
    tasks: list[BatchTask] = []
    for replica in range(count):
        seed = base_seed + replica
        graph = build_family_graph(
            family,
            n,
            b=entry.get("b"),
            p=float(entry.get("p", 0.1)),
            max_degree=int(entry.get("max_degree", 4)),
            trees=int(entry.get("trees", 3)),
            seed=seed,
        )
        speeds = parse_speeds(entry.get("speeds", "1,1,1"))
        jobs = parse_jobs(entry.get("jobs", "unit"), graph.n, seed)
        instance = UniformInstance(graph, jobs, speeds)
        base_name = entry.get("name", f"{family}-n{n}")
        name = base_name if count == 1 else f"{base_name}-s{seed}"
        tasks.append(BatchTask(name, instance_to_dict(instance), algorithm))
    return tasks


def expand_specs(
    data: dict[str, Any], base_dir: str | Path = "."
) -> list[BatchTask]:
    """Expand a parsed spec document into concrete batch tasks."""
    if not isinstance(data, dict):
        raise InvalidInstanceError("spec must be a JSON object")
    fmt = data.get("format", SPEC_FORMAT)
    if fmt != SPEC_FORMAT:
        raise InvalidInstanceError(
            f"unsupported spec format {fmt!r} (this build reads {SPEC_FORMAT})"
        )
    entries = data.get("instances")
    if not isinstance(entries, list) or not entries:
        raise InvalidInstanceError("spec needs a non-empty 'instances' list")
    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        raise InvalidInstanceError("'defaults' must be a JSON object")
    base = Path(base_dir)
    tasks: list[BatchTask] = []
    for index, raw in enumerate(entries):
        if not isinstance(raw, dict):
            raise InvalidInstanceError(f"spec entry {index} must be an object")
        entry = {**defaults, **raw}
        algorithm = entry.get("algorithm")
        if "instance" in entry:
            name = entry.get("name", f"inline-{index}")
            tasks.append(BatchTask(name, entry["instance"], algorithm))
        elif "path" in entry:
            path = base / entry["path"]
            name = entry.get("name", Path(entry["path"]).stem)
            tasks.append(BatchTask(name, load_json(path), algorithm))
        elif "family" in entry:
            tasks.extend(_family_tasks(entry, index))
        else:
            raise InvalidInstanceError(
                f"spec entry {index} needs 'instance', 'path', or 'family'"
            )
    return tasks


def load_spec_file(path: str | Path) -> list[BatchTask]:
    """Read and expand a spec file (entry paths resolve next to it)."""
    import json

    spec_path = Path(path)
    try:
        data = load_json(spec_path)
    except json.JSONDecodeError as exc:
        raise InvalidInstanceError(f"spec {spec_path} is not valid JSON: {exc}")
    return expand_specs(data, spec_path.parent)
