"""Canonical instance hashing and the batch result cache.

Two identical instances submitted twice (within one batch, or across
batch runs sharing a cache file) should cost one solve.  "Identical"
means *semantically* identical: the key is a SHA-256 over the canonical
JSON serialisation of the instance (:func:`repro.io.instance_to_dict`,
keys sorted, compact separators) plus the algorithm name, so it is
stable across processes, Python versions and insertion orders — unlike
``hash()`` — and safe to persist.

The cache itself is a plain ``key -> record`` dictionary with optional
JSONL persistence: every stored record is appended to the backing file
as it arrives, so a crashed batch still leaves a warm cache behind.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.exceptions import CacheCollisionError, InvalidInstanceError
from repro.io import append_jsonl

__all__ = [
    "canonical_instance_payload",
    "task_key",
    "ResultCache",
    "ShardedResultCache",
]


def canonical_instance_payload(payload: dict[str, Any]) -> str:
    """The canonical JSON text of a serialised instance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def task_key(payload: dict[str, Any], algorithm: str, certify: bool = False) -> str:
    """Content hash identifying one (instance, algorithm) solve task.

    The package version participates in the hash: solver behaviour and
    the ``auto`` dispatch policy are code, so a persistent cache written
    by one release must not answer for another.  Imported lazily to
    avoid a cycle (``repro/__init__`` imports this package).

    ``certify`` tasks carry extra certificate fields in their records,
    so they hash apart from plain solves of the same instance (keys of
    non-certify tasks are unchanged from earlier releases).
    """
    from repro import __version__

    digest = hashlib.sha256()
    digest.update(__version__.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(algorithm.encode("utf-8"))
    digest.update(b"\x00")
    if certify:
        digest.update(b"certify\x00")
    digest.update(canonical_instance_payload(payload).encode("utf-8"))
    return digest.hexdigest()


def _load_jsonl_records(path: Path) -> tuple[dict[str, dict[str, Any]], bool]:
    """Parse one JSONL cache file into ``key -> record`` (shared loader).

    Tolerates malformed lines: a run killed mid-append leaves a
    truncated tail (possibly with non-UTF-8 garbage bytes), and that
    must not brick the whole cache; duplicate keys across appending runs
    deterministically keep the newest record (last wins).  The second
    return value flags a tail missing its newline — appending onto it
    would splice the next record onto the broken line, so callers heal
    it before their first put.
    """
    text = path.read_text(encoding="utf-8", errors="replace")
    heal_tail = bool(text) and not text.endswith("\n")
    records: dict[str, dict[str, Any]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        key = record.get("key") if isinstance(record, dict) else None
        if isinstance(key, str):
            records[key] = record
    return records, heal_tail


def _checked_store(
    records: dict[str, dict[str, Any]], key: str, record: dict[str, Any]
) -> bool:
    """Store into ``records`` with collision semantics; True if new.

    Re-storing the *same* record is a no-op; re-storing a key with a
    *different* record raises :exc:`CacheCollisionError` — keys are
    content hashes, so a mismatch means serialisation drift or a
    poisoned cache file, and silently keeping the old record would mask
    exactly the bugs the certifier exists to catch.
    """
    existing = records.get(key)
    if existing is not None:
        if existing == record:
            return False
        raise CacheCollisionError(
            f"cache key {key[:16]}... already holds a different record "
            "(same content hash, different data: serialisation drift "
            "or corrupted cache file)"
        )
    records[key] = record
    return True


class ResultCache:
    """``task_key -> result record`` map, optionally backed by JSONL.

    Parameters
    ----------
    path:
        When given, existing records are loaded eagerly and every
        :meth:`put` is appended to the file.  ``None`` keeps the cache
        purely in-memory (intra-batch deduplication still works).

    Notes
    -----
    Loading is *eager*: the whole history is parsed up front, which is
    the right trade for batch runs that will touch most keys anyway.
    Long-lived services with large histories should use
    :class:`ShardedResultCache`, which loads per-prefix shards lazily.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: dict[str, dict[str, Any]] = {}
        self._heal_tail = False
        if self.path is not None and self.path.exists():
            self._records, self._heal_tail = _load_jsonl_records(self.path)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def record(self, key: str) -> dict[str, Any]:
        """The stored record for ``key`` (``KeyError`` if absent).

        Hit/fresh accounting lives in :class:`~repro.runtime.batch.BatchStats`,
        which counts per submission — the right granularity for a batch.
        """
        return self._records[key]

    def put(self, key: str, record: dict[str, Any]) -> None:
        """Store ``record`` under ``key`` (and append it to the file).

        Same-record re-puts are no-ops; different-record re-puts raise
        :exc:`CacheCollisionError` (see :func:`_checked_store`).
        """
        if not _checked_store(self._records, key, record):
            return
        if self.path is not None:
            if self._heal_tail:
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write("\n")
                self._heal_tail = False
            append_jsonl(record, self.path)


class ShardedResultCache:
    """A directory of prefix-sharded JSONL caches, loaded lazily.

    The single-file :class:`ResultCache` re-parses its entire JSONL
    history at construction — fine for a batch that will touch most
    keys, a serial-load hot path for a long-lived service that answers
    point queries.  This cache splits the ``key -> record`` space by the
    first ``shard_chars`` hex characters of the (SHA-256) task key into
    ``shard-<prefix>.jsonl`` files and parses a shard only on the first
    access of a key in it, so service startup is O(1) and each request
    pays for exactly one shard.

    Each shard keeps the single-file semantics: malformed/truncated
    lines are skipped, non-UTF-8 garbage is tolerated, a tail missing
    its newline is healed before the shard's first append, and
    same-key/different-record puts raise :exc:`CacheCollisionError`.

    Parameters
    ----------
    directory:
        Shard directory; created (with parents) if missing.
    shard_chars:
        Key-prefix length: ``1`` (default) gives 16 shards, ``2`` gives
        256.  Must match across processes sharing the directory, so it
        is persisted implicitly in the shard file names.
    """

    def __init__(self, directory: str | Path, shard_chars: int = 1) -> None:
        if not 1 <= shard_chars <= 8:
            raise InvalidInstanceError(
                f"shard_chars must be in 1..8, got {shard_chars}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shard_chars = shard_chars
        self._shards: dict[str, dict[str, dict[str, Any]]] = {}
        self._heal_tail: dict[str, bool] = {}
        # a directory written with a different prefix length would make
        # every lookup miss its records (and re-solves would write
        # conflicting duplicates beside them) — fail loudly instead
        for path in self.shard_files():
            prefix = path.stem.removeprefix("shard-")
            if len(prefix) != shard_chars:
                raise InvalidInstanceError(
                    f"{self.directory} was sharded with shard_chars="
                    f"{len(prefix)} (found {path.name}); reopen with that "
                    f"value, not {shard_chars}"
                )

    def _shard_id(self, key: str) -> str:
        # keys shorter than the prefix (not SHA-256? tests, tools) pad
        # with "_" so every shard name has the declared prefix length —
        # otherwise a short key would write a shard the reopen guard
        # reads as a different shard_chars and reject the directory
        return key[: self.shard_chars].ljust(self.shard_chars, "_")

    def _shard_path(self, shard_id: str) -> Path:
        return self.directory / f"shard-{shard_id}.jsonl"

    def _shard(self, shard_id: str) -> dict[str, dict[str, Any]]:
        """The in-memory map of one shard, parsing its file on first use."""
        loaded = self._shards.get(shard_id)
        if loaded is not None:
            return loaded
        path = self._shard_path(shard_id)
        if path.exists():
            records, heal = _load_jsonl_records(path)
        else:
            records, heal = {}, False
        self._shards[shard_id] = records
        self._heal_tail[shard_id] = heal
        return records

    @property
    def loaded_shards(self) -> tuple[str, ...]:
        """Shard ids parsed so far (laziness is observable, and tested)."""
        return tuple(sorted(self._shards))

    def shard_files(self) -> list[Path]:
        """Every shard file currently on disk, sorted by name."""
        return sorted(self.directory.glob("shard-*.jsonl"))

    def __contains__(self, key: str) -> bool:
        return key in self._shard(self._shard_id(key))

    def __len__(self) -> int:
        """Total record count — loads *every* shard (tests/diagnostics)."""
        for path in self.shard_files():
            shard_id = path.stem.removeprefix("shard-")
            self._shard(shard_id)
        return sum(len(shard) for shard in self._shards.values())

    def record(self, key: str) -> dict[str, Any]:
        """The stored record for ``key`` (``KeyError`` if absent)."""
        return self._shard(self._shard_id(key))[key]

    def put(self, key: str, record: dict[str, Any]) -> None:
        """Store ``record`` under ``key`` and append it to its shard file."""
        shard_id = self._shard_id(key)
        if not _checked_store(self._shard(shard_id), key, record):
            return
        path = self._shard_path(shard_id)
        if self._heal_tail.get(shard_id):
            with path.open("a", encoding="utf-8") as fh:
                fh.write("\n")
            self._heal_tail[shard_id] = False
        append_jsonl(record, path)

    @classmethod
    def migrate_jsonl(
        cls,
        jsonl_path: str | Path,
        directory: str | Path,
        shard_chars: int = 1,
    ) -> "ShardedResultCache":
        """Split a flat :class:`ResultCache` JSONL file into shards.

        Existing shard contents are kept (collisions raise, as always);
        the source file is left untouched so the migration is safe to
        re-run or abort.
        """
        flat = ResultCache(jsonl_path)
        sharded = cls(directory, shard_chars=shard_chars)
        for key, record in flat._records.items():
            sharded.put(key, record)
        return sharded
