"""Canonical instance hashing and the batch result cache.

Two identical instances submitted twice (within one batch, or across
batch runs sharing a cache file) should cost one solve.  "Identical"
means *semantically* identical: the key is a SHA-256 over the canonical
JSON serialisation of the instance (:func:`repro.io.instance_to_dict`,
keys sorted, compact separators) plus the algorithm name, so it is
stable across processes, Python versions and insertion orders — unlike
``hash()`` — and safe to persist.

The cache itself is a plain ``key -> record`` dictionary with optional
JSONL persistence: every stored record is appended to the backing file
as it arrives, so a crashed batch still leaves a warm cache behind.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any

from repro.exceptions import CacheCollisionError
from repro.io import append_jsonl

__all__ = ["canonical_instance_payload", "task_key", "ResultCache"]


def canonical_instance_payload(payload: dict[str, Any]) -> str:
    """The canonical JSON text of a serialised instance."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def task_key(payload: dict[str, Any], algorithm: str, certify: bool = False) -> str:
    """Content hash identifying one (instance, algorithm) solve task.

    The package version participates in the hash: solver behaviour and
    the ``auto`` dispatch policy are code, so a persistent cache written
    by one release must not answer for another.  Imported lazily to
    avoid a cycle (``repro/__init__`` imports this package).

    ``certify`` tasks carry extra certificate fields in their records,
    so they hash apart from plain solves of the same instance (keys of
    non-certify tasks are unchanged from earlier releases).
    """
    from repro import __version__

    digest = hashlib.sha256()
    digest.update(__version__.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(algorithm.encode("utf-8"))
    digest.update(b"\x00")
    if certify:
        digest.update(b"certify\x00")
    digest.update(canonical_instance_payload(payload).encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """``task_key -> result record`` map, optionally backed by JSONL.

    Parameters
    ----------
    path:
        When given, existing records are loaded eagerly and every
        :meth:`put` is appended to the file.  ``None`` keeps the cache
        purely in-memory (intra-batch deduplication still works).
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._records: dict[str, dict[str, Any]] = {}
        self._heal_tail = False
        if self.path is not None and self.path.exists():
            # tolerate malformed lines: a run killed mid-append leaves a
            # truncated tail (possibly with garbage bytes), and that must
            # not brick the whole cache; duplicate keys across appending
            # runs deterministically keep the newest record (last wins)
            text = self.path.read_text(encoding="utf-8", errors="replace")
            # a tail without its newline would splice the next append
            # onto the broken line — heal it before the first put
            self._heal_tail = bool(text) and not text.endswith("\n")
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                key = record.get("key") if isinstance(record, dict) else None
                if isinstance(key, str):
                    self._records[key] = record

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def record(self, key: str) -> dict[str, Any]:
        """The stored record for ``key`` (``KeyError`` if absent).

        Hit/fresh accounting lives in :class:`~repro.runtime.batch.BatchStats`,
        which counts per submission — the right granularity for a batch.
        """
        return self._records[key]

    def put(self, key: str, record: dict[str, Any]) -> None:
        """Store ``record`` under ``key`` (and append it to the file).

        Re-storing the *same* record is a no-op; re-storing a key with a
        *different* record raises :exc:`CacheCollisionError` — keys are
        content hashes, so a mismatch means serialisation drift or a
        poisoned cache file, and silently keeping the old record would
        mask exactly the bugs the certifier exists to catch.
        """
        existing = self._records.get(key)
        if existing is not None:
            if existing == record:
                return
            raise CacheCollisionError(
                f"cache key {key[:16]}... already holds a different record "
                "(same content hash, different data: serialisation drift "
                "or corrupted cache file)"
            )
        self._records[key] = record
        if self.path is not None:
            if self._heal_tail:
                with self.path.open("a", encoding="utf-8") as fh:
                    fh.write("\n")
                self._heal_tail = False
            append_jsonl(record, self.path)
