"""High-throughput batch execution over the solver registry.

The runtime layer turns "solve this instance" into "solve this stream of
instances as fast as the hardware allows": :class:`BatchRunner` fans
work across a process pool, deduplicates semantically identical tasks by
content hash, serves repeats from a persistent JSONL cache, and streams
structured :class:`BatchResult` records through :mod:`repro.io`.

Spec files (:mod:`repro.runtime.specs`) describe instance collections
declaratively for ``python -m repro batch``; the benchmark harness and
:mod:`repro.analysis.suites` consume the same record stream.
"""

from repro.runtime.batch import (
    RESULT_FORMAT,
    BatchResult,
    BatchRunner,
    BatchStats,
    BatchTask,
)
from repro.runtime.cache import (
    ResultCache,
    ShardedResultCache,
    canonical_instance_payload,
    task_key,
)
from repro.runtime.specs import (
    CONFLICT_FAMILIES,
    GRAPH_FAMILIES,
    SPEC_FORMAT,
    SPEC_FORMAT_V2,
    SPEC_FORMAT_V3,
    SPEC_FORMATS,
    build_conflict_graph,
    build_family_graph,
    expand_specs,
    load_spec_file,
)

__all__ = [
    "RESULT_FORMAT",
    "SPEC_FORMAT",
    "SPEC_FORMAT_V2",
    "SPEC_FORMAT_V3",
    "SPEC_FORMATS",
    "GRAPH_FAMILIES",
    "CONFLICT_FAMILIES",
    "BatchResult",
    "BatchRunner",
    "BatchStats",
    "BatchTask",
    "ResultCache",
    "ShardedResultCache",
    "canonical_instance_payload",
    "task_key",
    "build_family_graph",
    "build_conflict_graph",
    "expand_specs",
    "load_spec_file",
]
