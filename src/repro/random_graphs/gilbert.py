"""The Gilbert random bipartite graph ``G(n, n, p)``.

Following [16] (and Section 4.1), the model is the probability space over
spanning subgraphs of ``K_{n,n}`` where each of the ``n^2`` possible edges
appears independently with probability ``p``.  The sampler is vectorised:
a Bernoulli mask over the ``n x n`` biadjacency matrix.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.bipartite import BipartiteGraph
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_probability

__all__ = ["gnnp", "gnnp_edge_count_distribution"]


def gnnp(n: int, p: float, seed=None) -> BipartiteGraph:
    """Sample ``G(n, n, p)``.

    Vertices ``0..n-1`` form part ``V_1`` (side 0), ``n..2n-1`` part
    ``V_2`` (side 1).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    p = check_probability(p)
    rng = ensure_rng(seed)
    if n == 0:
        return BipartiteGraph(0, [])
    mask = rng.random((n, n)) < p
    rows, cols = np.nonzero(mask)
    edges = [(int(i), int(j)) for i, j in zip(rows, cols)]
    return BipartiteGraph.from_parts(n, n, edges)


def gnnp_edge_count_distribution(n: int, p: float) -> tuple[float, float]:
    """Mean and variance of the edge count of ``G(n, n, p)``.

    ``X ~ Binomial(n^2, p)``: the quantities used in Corollary 11's
    Chebyshev argument.
    """
    p = check_probability(p)
    mean = n * n * p
    var = n * n * p * (1.0 - p)
    return mean, var
