"""Section 4.1 substrate: the Gilbert random bipartite model ``G(n, n, p)``,
the three ``p(n)`` regimes the paper distinguishes, the closed-form bounds
of Corollary 11 / Lemmas 12–14 / Theorems 15, 17, and Monte-Carlo
estimators that the experiment suite compares against them."""

from repro.random_graphs.gilbert import gnnp, gnnp_edge_count_distribution
from repro.random_graphs.regimes import (
    Regime,
    classify_regime,
    probability_for_regime,
)
from repro.random_graphs.theory import (
    smaller_class_fraction_bound,
    matching_fraction_lower_bound,
    ratio_bound_lemma14,
    ratio_limit_constant,
    zito_min_maximal_matching_bound,
)
from repro.random_graphs.statistics import (
    GraphStatistics,
    graph_statistics,
    sample_statistics,
)

__all__ = [
    "gnnp",
    "gnnp_edge_count_distribution",
    "Regime",
    "classify_regime",
    "probability_for_regime",
    "smaller_class_fraction_bound",
    "matching_fraction_lower_bound",
    "ratio_bound_lemma14",
    "ratio_limit_constant",
    "zito_min_maximal_matching_bound",
    "GraphStatistics",
    "graph_statistics",
    "sample_statistics",
]
