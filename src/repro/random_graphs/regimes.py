"""The three ``p(n)`` regimes of Section 4.1.

The paper analyses monotone edge-probability functions in three ranges:

* **subcritical** — ``p(n) = o(1/n)``: almost all vertices of ``V_2`` are
  isolated, the smaller coloring class vanishes (Corollary 11);
* **critical** — ``p(n) = a/n``: constant average degree; the smaller
  class and ``n - alpha`` are both ``Theta(n)`` and their ratio is
  bounded by 1.6 (Lemmas 12–14);
* **supercritical** — ``p(n) = omega(1/n)``: the matching is almost
  perfect (Theorems 15/17, Corollaries 16/18).

:func:`probability_for_regime` gives canonical representatives used by the
experiment sweeps: ``1/(n log n)``, ``a/n`` and ``log^2(n)/n``.
"""

from __future__ import annotations

import math
from enum import Enum

__all__ = ["Regime", "classify_regime", "probability_for_regime"]


class Regime(Enum):
    """Which asymptotic range a concrete ``(n, p)`` pair represents."""

    SUBCRITICAL = "subcritical"      # p * n -> 0
    CRITICAL = "critical"            # p * n -> a in (0, inf)
    SUPERCRITICAL = "supercritical"  # p * n -> inf


def classify_regime(n: int, p: float, lo: float = 0.2, hi: float = 20.0) -> Regime:
    """Heuristic classification of a finite ``(n, p)`` pair by ``p * n``.

    Asymptotic regimes are properties of functions, not numbers; for
    finite experiments we bucket by the average ``V_1``-degree ``p * n``
    with the (configurable) thresholds ``lo`` and ``hi``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    avg_degree = p * n
    if avg_degree < lo:
        return Regime.SUBCRITICAL
    if avg_degree > hi:
        return Regime.SUPERCRITICAL
    return Regime.CRITICAL


def probability_for_regime(regime: Regime, n: int, a: float = 2.0) -> float:
    """A canonical ``p(n)`` for each regime at a concrete ``n``.

    * subcritical: ``1 / (n log n)`` — cleanly ``o(1/n)``;
    * critical: ``a / n``;
    * supercritical: ``log(n)^2 / n`` — ``omega(1/n)`` and ``o(1)``, and
      satisfies Theorem 15's ``n p - log n -> infinity``.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    if regime is Regime.SUBCRITICAL:
        return min(1.0, 1.0 / (n * math.log(n)))
    if regime is Regime.CRITICAL:
        if a <= 0:
            raise ValueError(f"critical regime needs a > 0, got {a}")
        return min(1.0, a / n)
    return min(1.0, math.log(n) ** 2 / n)
