"""Closed-form bounds from Section 4.1, as evaluable functions.

Each function implements one displayed bound; the experiment suite overlays
them on Monte-Carlo estimates (bench ``E4``).  Asymptotic ``o(.)`` slack
terms are dropped — the finite-``n`` comparisons in EXPERIMENTS.md discuss
the resulting gaps.
"""

from __future__ import annotations

import math

__all__ = [
    "smaller_class_fraction_bound",
    "matching_fraction_lower_bound",
    "ratio_bound_lemma14",
    "ratio_limit_constant",
    "zito_min_maximal_matching_bound",
]


def smaller_class_fraction_bound(n: int, a: float) -> float:
    """Lemma 12: a.a.s. ``|V'_2| / n <= 1 - (1 - a/n)^n`` (plus ``o(1)``).

    The bound counts the non-isolated vertices of ``V_2``; isolated ones
    can always join the larger class.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if a < 0 or a > n:
        raise ValueError(f"need 0 <= a <= n, got a={a}")
    return 1.0 - (1.0 - a / n) ** n


def matching_fraction_lower_bound(a: float) -> float:
    """Lemma 13 ([21]): a.a.s. ``mu(G(n,n,a/n)) >= (1 - e^(e^-a - 1)) n``.

    Returned as the fraction ``mu / n``.
    """
    if a < 0:
        raise ValueError(f"a must be non-negative, got {a}")
    return 1.0 - math.exp(math.exp(-a) - 1.0)


def ratio_bound_lemma14(a: float) -> float:
    """Lemma 14's limiting ratio ``(1 - e^-a) / (1 - e^(e^-a - 1))``.

    Monotone increasing in ``a`` with limit ``e / (e - 1) < 1.6``; the
    a.a.s. bound on ``|V'_2| / (n - alpha(G))``.
    """
    if a <= 0:
        raise ValueError(f"a must be positive, got {a}")
    num = 1.0 - math.exp(-a)
    den = 1.0 - math.exp(math.exp(-a) - 1.0)
    return num / den


def ratio_limit_constant() -> float:
    """``e / (e - 1) ~= 1.582``: the supremum of :func:`ratio_bound_lemma14`."""
    return math.e / (math.e - 1.0)


def zito_min_maximal_matching_bound(n: int, p: float) -> float:
    """Theorem 17 ([26]): a.a.s. ``beta(G) > n - 2 log(np) / log(1/(1-p))``.

    ``beta`` is the size of the smallest *maximal* matching; since
    ``mu >= beta``, this lower-bounds the maximum matching too
    (Corollary 18's route to ``mu = (1 - o(1)) n``).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not (0.0 < p < 1.0):
        raise ValueError(f"need 0 < p < 1, got {p}")
    if n * p <= 1.0:
        raise ValueError(f"bound needs np > 1, got np={n * p}")
    return n - 2.0 * math.log(n * p) / math.log(1.0 / (1.0 - p))
