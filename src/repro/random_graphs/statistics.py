"""Monte-Carlo estimators for the random-graph quantities of Section 4.1.

For a sampled graph we measure exactly (our own Hopcroft–Karp / König
machinery) the statistics the paper's lemmas bound:

* the inequitable-coloring class sizes ``|V'_1|, |V'_2|``,
* the maximum matching size ``mu`` and independence number
  ``alpha = 2n - mu``,
* the Lemma 14 ratio ``|V'_2| / (n - alpha)``,
* isolated-vertex counts (the estimator inside Lemma 12's proof).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.coloring import inequitable_two_coloring
from repro.graphs.matching import maximum_matching_size
from repro.random_graphs.gilbert import gnnp
from repro.utils.rng import ensure_rng, spawn_rngs

__all__ = ["GraphStatistics", "graph_statistics", "sample_statistics"]


@dataclass(frozen=True)
class GraphStatistics:
    """Exact structural statistics of one bipartite graph on ``2n`` vertices."""

    n_per_side: int
    edge_count: int
    larger_class: int
    smaller_class: int
    matching_size: int
    independence_number: int
    isolated_side2: int

    @property
    def smaller_class_fraction(self) -> float:
        """``|V'_2| / n`` — compare against Lemma 12."""
        return self.smaller_class / self.n_per_side if self.n_per_side else 0.0

    @property
    def matching_fraction(self) -> float:
        """``mu / n`` — compare against Lemma 13 / Theorem 15."""
        return self.matching_size / self.n_per_side if self.n_per_side else 0.0

    @property
    def lemma14_ratio(self) -> float | None:
        """Lemma 14's ratio ``|V'_2| / (|V(G)| - alpha(G))``.

        The paper writes the denominator as ``n - alpha`` but (as its own
        Theorem 19 proof makes explicit by switching to ``|J| - alpha``)
        the meaningful quantity is ``|V(G)| - alpha(G)``, which by
        König/Gallai equals the matching size ``mu(G)``: the minimum
        number of jobs that must leave any single machine, since one
        machine can hold at most ``alpha`` jobs.  Lemma 14 bounds this
        ratio by 1.6 a.a.s. in the ``p = a/n`` regime.

        ``None`` for edgeless graphs (``mu = 0``: nothing is forced off
        machine 1 and the ratio is vacuous).
        """
        if self.matching_size == 0:
            return None
        return self.smaller_class / self.matching_size


def graph_statistics(graph: BipartiteGraph, n_per_side: int) -> GraphStatistics:
    """Measure one graph exactly."""
    class1, class2 = inequitable_two_coloring(graph)
    mu = maximum_matching_size(graph)
    side2 = graph.vertices_on_side(1)
    isolated2 = sum(1 for v in side2 if graph.degree(v) == 0)
    return GraphStatistics(
        n_per_side=n_per_side,
        edge_count=graph.edge_count,
        larger_class=len(class1),
        smaller_class=len(class2),
        matching_size=mu,
        independence_number=graph.n - mu,
        isolated_side2=isolated2,
    )


def sample_statistics(
    n: int, p: float, samples: int, seed=None
) -> list[GraphStatistics]:
    """Measure ``samples`` independent draws of ``G(n, n, p)``."""
    rngs = spawn_rngs(ensure_rng(seed), samples)
    return [graph_statistics(gnnp(n, p, rng), n) for rng in rngs]
