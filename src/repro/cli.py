"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package version and the algorithm registry.
``generate``
    Build an instance from a named graph family plus machine data and
    write it as JSON.
``solve``
    Load an instance JSON, run one algorithm (default: auto dispatch),
    print the outcome, optionally a Gantt chart, optionally save the
    schedule JSON.
``structure``
    Print the structural fingerprint of an instance's graph.
``batch``
    Expand a batch spec file and run every instance through the
    :mod:`repro.runtime` engine (worker pool, dedup, result cache),
    streaming JSONL results and printing a per-algorithm summary;
    ``--certify`` audits every schedule through :mod:`repro.certify`.
``certify``
    Sweep the algorithm registry across workload models and graph
    families, audit every schedule, compare ratios against declared
    guarantees (exact-oracle ground truth where tractable), and exit
    non-zero on any violation.
``serve``
    Persistent serving loop (:mod:`repro.engine.service`): JSONL
    requests on stdin (or a TCP socket with ``--port``), canonical
    content-hash keys, repeats answered from a sharded result cache.
``perf``
    Measure the optimized hot paths (Hopcroft–Karp, greedy list
    scheduling, the exact oracle, BatchRunner fan-out) against their
    preserved pre-optimization baselines and emit machine-readable
    ``BENCH_PERF_*`` artifacts; ``--check DIR`` validates existing
    ``BENCH_*.json`` artifacts against the schema instead (the CI
    gate).
``experiment``
    Re-run one experiment (E1..) by invoking its benchmark file through
    pytest.

Every command is importable and unit-testable through :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import __version__
from repro.analysis.gantt import render_gantt, render_schedule_summary
from repro.analysis.tables import format_table, render_number
from repro.engine import (
    available_algorithms,
    explain_dispatch,
    portfolio_solve,
    solve,
)
from repro.exceptions import ReproError
from repro.graphs.conflict import ConflictGraph
from repro.graphs.structure import analyze_structure
from repro.io import (
    instance_to_dict,
    load_instance,
    save_json,
    schedule_to_dict,
)
from repro.runtime import (
    CONFLICT_FAMILIES,
    GRAPH_FAMILIES,
    BatchRunner,
    build_conflict_graph,
    build_family_graph,
    load_spec_file,
)
from repro.scheduling.instance import UniformInstance
from repro.workloads import (
    UNRELATED_MODELS,
    build_unrelated_instance,
    parse_jobs,
    parse_speeds,
    random_eligibility,
)
from repro.workloads.parsing import JOB_PROFILES

__all__ = ["main", "build_parser"]

_FAMILIES = GRAPH_FAMILIES + CONFLICT_FAMILIES


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for doc generation/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Scheduling with bipartite incompatibility graphs "
            "(Pikies & Furmańczyk, IPPS 2022) — reproduction toolkit"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package version and algorithm registry")

    gen = sub.add_parser("generate", help="generate an instance JSON")
    gen.add_argument("--family", choices=_FAMILIES, required=True)
    gen.add_argument("--n", type=int, default=20, help="size parameter")
    gen.add_argument("--b", type=int, default=None, help="second size (K_{a,b}, degree_bounded)")
    gen.add_argument("--p", type=float, default=0.1, help="edge probability (gnnp)")
    gen.add_argument("--max-degree", type=int, default=4, help="degree bound (degree_bounded)")
    gen.add_argument("--trees", type=int, default=3, help="tree count (forest)")
    gen.add_argument(
        "--parts",
        type=str,
        default=None,
        help="complete_multipartite: comma-separated class sizes "
        "('2,2,3'), or a single integer class count for a random split "
        "of --n vertices",
    )
    gen.add_argument(
        "--free",
        type=int,
        default=0,
        help="complete_multipartite: isolated (conflict-free) vertices "
        "appended after the classes",
    )
    gen.add_argument(
        "--blocks",
        type=str,
        default=None,
        help="block: comma-separated clique sizes chained at cut "
        "vertices ('3,2,4'); omit for a random block graph on --n "
        "vertices",
    )
    gen.add_argument(
        "--max-block",
        type=int,
        default=4,
        help="block: largest clique size for the random generator",
    )
    gen.add_argument(
        "--eligible-choices",
        type=int,
        default=None,
        help="kind=uniform: restrict each job to this many seeded "
        "machine choices (machine-eligibility masks)",
    )
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--speeds",
        type=str,
        default="1,1,1",
        help="comma-separated machine speeds (fractions allowed: '3,3/2,1'; "
        "kind=uniform only)",
    )
    gen.add_argument(
        "--jobs",
        type=str,
        default="unit",
        help="'unit', a named weight profile ('uniform', 'heavy_tailed', "
        "'one_giant'), or comma-separated integer processing requirements",
    )
    gen.add_argument(
        "--kind",
        choices=("uniform", "unrelated"),
        default="uniform",
        help="machine environment (Q with --speeds, or R via a workload model)",
    )
    gen.add_argument(
        "--model",
        choices=tuple(sorted(UNRELATED_MODELS)),
        default="uniform_pij",
        help="p_ij model for kind=unrelated (repro.workloads)",
    )
    gen.add_argument(
        "--m", type=int, default=2, help="machine count (kind=unrelated)"
    )
    gen.add_argument("--out", type=str, required=True, help="output JSON path")

    slv = sub.add_parser("solve", help="solve an instance JSON")
    slv.add_argument("instance", type=str, help="instance JSON path")
    slv.add_argument("--algorithm", type=str, default="auto")
    slv.add_argument(
        "--explain",
        action="store_true",
        help="print per-algorithm accept/reject reasons for this dispatch",
    )
    slv.add_argument(
        "--portfolio", type=int, default=None, metavar="K",
        help="race up to K eligible algorithms and keep the best schedule",
    )
    slv.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for --portfolio (1 = sequential)",
    )
    slv.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    slv.add_argument(
        "--polish",
        action="store_true",
        help="apply local-search moves/swaps after solving (never regresses)",
    )
    slv.add_argument("--out", type=str, default=None, help="write schedule JSON here")

    st = sub.add_parser("structure", help="analyze an instance's graph structure")
    st.add_argument("instance", type=str, help="instance JSON path")

    bat = sub.add_parser(
        "batch", help="run a batch spec through the runtime engine"
    )
    bat.add_argument("spec", type=str, help="batch spec JSON path")
    bat.add_argument(
        "--algorithm", type=str, default="auto",
        help="default algorithm for entries without their own",
    )
    bat.add_argument("--workers", type=int, default=1, help="worker process count")
    bat.add_argument(
        "--chunk-jobs", type=int, default=256,
        help="submissions drawn per scheduling round",
    )
    bat.add_argument("--out", type=str, default=None, help="results JSONL path")
    bat.add_argument(
        "--cache", type=str, default=None,
        help="persistent result cache (JSONL; created on first run)",
    )
    bat.add_argument(
        "--no-summary", action="store_true",
        help="skip the per-algorithm summary table",
    )
    bat.add_argument(
        "--certify", action="store_true",
        help="audit every schedule through repro.certify and store "
        "certificates on the result records",
    )

    cert = sub.add_parser(
        "certify",
        help="sweep the algorithm registry for guarantee violations "
        "(schedule audits + exact-oracle ground truth)",
    )
    cert.add_argument(
        "--instance", type=str, default=None, metavar="PATH",
        help="audit this one instance JSON instead of sweeping the "
        "generated suite (every applicable algorithm runs on it)",
    )
    cert.add_argument("--n", type=int, default=10, help="instance size parameter")
    cert.add_argument("--m", type=int, default=3, help="machine count")
    cert.add_argument("--seeds", type=int, default=1, help="replicas per cell")
    cert.add_argument("--seed", type=int, default=0, help="base seed")
    cert.add_argument(
        "--oracle-max-n", type=int, default=14,
        help="largest n ground truth is computed for (exact oracle)",
    )
    cert.add_argument(
        "--workers", type=int, default=1,
        help="search processes for the exact oracle's parallel branch "
        "and bound (the certified optimum is identical for any value)",
    )
    cert.add_argument(
        "--algorithms", type=str, default=None,
        help="comma-separated algorithm subset (default: every applicable)",
    )
    cert.add_argument("--out", type=str, default=None, help="audit rows JSONL path")

    srv = sub.add_parser(
        "serve",
        help="persistent solve service: JSONL requests on stdin (or TCP "
        "with --port), repeats answered from a sharded result cache",
    )
    srv.add_argument(
        "--cache-dir", type=str, default=None,
        help="sharded result-cache directory (created on first run; "
        "omit for an in-memory cache)",
    )
    srv.add_argument(
        "--algorithm", type=str, default="auto",
        help="default algorithm for requests without their own",
    )
    srv.add_argument(
        "--port", type=int, default=None,
        help="serve on this TCP port instead of stdin/stdout (0 = "
        "ephemeral); TCP serving is concurrent (asyncio) unless --sync",
    )
    srv.add_argument("--host", type=str, default="127.0.0.1")
    srv.add_argument(
        "--max-requests", type=int, default=None,
        help="exit after this many requests (one-shot smoke tests)",
    )
    srv.add_argument(
        "--sync", action="store_true",
        help="TCP fallback: serve connections sequentially, one at a "
        "time, on the classic blocking loop (no coalescing/backpressure)",
    )
    srv.add_argument(
        "--workers", type=int, default=1,
        help="async tier: solver processes (1 = in-process thread pool; "
        ">1 = persistent multiprocessing pool)",
    )
    srv.add_argument(
        "--max-inflight", type=int, default=8,
        help="async tier: concurrent fresh solves admitted at once",
    )
    srv.add_argument(
        "--max-queue", type=int, default=64,
        help="async tier: admitted solves allowed to wait beyond "
        "--max-inflight before fresh requests are rejected as overloaded",
    )
    srv.add_argument(
        "--backlog", type=int, default=128,
        help="TCP listen backlog (kernel-queued pending connections)",
    )
    srv.add_argument(
        "--stats-interval", type=float, default=None,
        help="async tier: log a qps/latency/coalesce metrics line to "
        "stderr every this many seconds",
    )

    perf = sub.add_parser(
        "perf",
        help="measure the optimized hot paths against their preserved "
        "baselines and emit BENCH_PERF_* artifacts (or --check existing "
        "BENCH_*.json artifacts against the schema)",
    )
    perf.add_argument(
        "--target", type=str, default="all",
        help="scenario to run: all, or one of the named hot paths "
        "(see repro.perf.scenarios)",
    )
    perf.add_argument("--repeat", type=int, default=5, help="timed runs per case (median reported)")
    perf.add_argument("--warmup", type=int, default=1, help="discarded runs before timing")
    perf.add_argument(
        "--smoke", action="store_true",
        help="CI shape: smaller sweeps, same code paths",
    )
    perf.add_argument(
        "--profile", action="store_true",
        help="also print the cProfile top-10 of each scenario's largest case",
    )
    perf.add_argument(
        "--out-dir", type=str, default=None,
        help="artifact directory (default: benchmarks/out next to the package)",
    )
    perf.add_argument(
        "--check", type=str, default=None, metavar="DIR",
        help="validate every BENCH_*.json (and BENCH_trajectory.jsonl) in "
        "DIR against the schema and exit; non-zero on any violation",
    )
    perf.add_argument(
        "--allow-dirty", action="store_true",
        help="with --check: accept records measured on a dirty working "
        "tree (git_rev ending in -dirty); rejected by default because "
        "such numbers are not reproducible from any commit",
    )

    exp = sub.add_parser("experiment", help="re-run one experiment (E1, E2, ...)")
    exp.add_argument("experiment_id", type=str, help="experiment id, e.g. E3")

    rep = sub.add_parser("report", help="aggregate benchmarks/out into one document")
    rep.add_argument("--out", type=str, default=None, help="write markdown here (default: stdout)")

    lint = sub.add_parser(
        "lint",
        help="run the repo's AST invariant linter (repro.staticcheck)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rules",
        type=str,
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is the repro/lint/v1 schema)",
    )
    lint.add_argument(
        "--fix-hints",
        action="store_true",
        help="append each rule's remedy to text findings",
    )
    lint.add_argument(
        "--out",
        type=str,
        default=None,
        help="also write the report here (e.g. the CI artifact)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )

    return parser


def _make_graph(args: argparse.Namespace) -> ConflictGraph:
    if args.family == "complete_multipartite":
        spec: dict = {"family": "complete_multipartite", "free": args.free}
        if args.parts is not None and "," in args.parts:
            spec["sizes"] = [int(x) for x in args.parts.split(",")]
        else:
            spec["n"] = args.n
            if args.parts is not None:
                spec["parts"] = int(args.parts)
        return build_conflict_graph(spec, seed=args.seed)
    if args.family == "block":
        if args.blocks is not None:
            spec = {
                "family": "block",
                "chain": [int(x) for x in args.blocks.split(",")],
            }
        else:
            spec = {"family": "block", "n": args.n, "max_block": args.max_block}
        return build_conflict_graph(spec, seed=args.seed)
    return build_family_graph(
        args.family,
        args.n,
        b=args.b,
        p=args.p,
        max_degree=args.max_degree,
        trees=args.trees,
        seed=args.seed,
    )


def _cmd_info() -> int:
    print(f"repro {__version__} — Pikies & Furmańczyk (IPPS 2022), arXiv:2106.14354")
    rows = [
        [spec.name, spec.guarantee, spec.anchor]
        for spec in available_algorithms()
    ]
    print(format_table(["algorithm", "guarantee", "paper anchor"], rows))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _make_graph(args)
    named = args.jobs == "unit" or args.jobs in JOB_PROFILES
    jobs_value = args.jobs if named else args.jobs.split(",")
    p = parse_jobs(jobs_value, graph.n, args.seed)
    if args.kind == "unrelated":
        if args.eligible_choices is not None:
            raise ReproError(
                "--eligible-choices applies to kind=uniform only "
                "(unrelated models express restrictions as forbidden times)"
            )
        instance = build_unrelated_instance(
            graph, args.model, args.m, p=p, seed=args.seed
        )
        detail = f"model={args.model}"
    else:
        speeds = parse_speeds(args.speeds)
        eligible = (
            None
            if args.eligible_choices is None
            else random_eligibility(
                graph.n,
                len(speeds),
                choices=args.eligible_choices,
                seed=args.seed,
            )
        )
        instance = UniformInstance(graph, p, speeds, eligible=eligible)
        detail = f"sum p={instance.total_p}"
    path = save_json(instance_to_dict(instance), args.out)
    print(
        f"wrote {path}: kind={args.kind}, n={instance.n}, m={instance.m}, "
        f"|E|={instance.graph.edge_count}, {detail}"
    )
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    import contextlib

    instance = load_instance(args.instance)
    if args.explain:
        report = explain_dispatch(instance, algorithm=args.algorithm)
        print(report.table())
        if report.error is not None:
            print(f"error: {report.error}", file=sys.stderr)
            return 2
        if args.portfolio is None and report.chosen is not None:
            # reuse the resolved choice: the printed table and the
            # executed algorithm can then never diverge, and the auto
            # dispatch (structure scan included) runs once, not twice
            args.algorithm = report.chosen
    if args.portfolio is not None:
        if args.algorithm != "auto":
            # racing a fixed candidate list and honouring a named
            # algorithm are contradictory requests — refuse loudly
            # rather than silently dropping the name
            print(
                "error: --portfolio races the strongest eligible methods "
                "and cannot honour --algorithm; drop one of the two flags",
                file=sys.stderr,
            )
            return 2
        with contextlib.ExitStack() as stack:
            runner = None
            if args.workers > 1:
                runner = stack.enter_context(BatchRunner(workers=args.workers))
            result = portfolio_solve(instance, k=args.portfolio, runner=runner)
        print(result.table())
        schedule, chosen = result.schedule, result.chosen
    else:
        schedule = solve(instance, algorithm=args.algorithm)
        chosen = args.algorithm
    if args.polish and schedule.is_feasible():
        from repro.scheduling.local_search import improve_schedule

        result = improve_schedule(schedule)
        if result.improvement > 0:
            print(
                f"polish: {render_number(result.initial_makespan)} -> "
                f"{render_number(result.schedule.makespan)} "
                f"({result.moves} moves, {result.swaps} swaps)"
            )
        schedule = result.schedule
    print(
        f"algorithm={chosen}  Cmax={render_number(schedule.makespan)} "
        f"({schedule.makespan})  feasible={schedule.is_feasible()}"
    )
    print(render_schedule_summary(schedule))
    if args.gantt:
        print(render_gantt(schedule))
    if args.out:
        save_json(schedule_to_dict(schedule), args.out)
        print(f"schedule written to {args.out}")
    return 0


def _cmd_structure(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    structure = analyze_structure(instance.graph)
    print(structure.describe())
    env = "uniform (Q)" if isinstance(instance, UniformInstance) else "unrelated (R)"
    print(f"machine environment: {env}, m={instance.m}")
    applicable = [s.name for s in available_algorithms(instance)]
    print("applicable algorithms: " + ", ".join(applicable))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    import contextlib
    import time
    from pathlib import Path

    from repro.io import dump_jsonl_line

    tasks = load_spec_file(args.spec)
    runner = BatchRunner(
        algorithm=args.algorithm,
        workers=args.workers,
        chunk_jobs=args.chunk_jobs,
        cache=args.cache,
        certify=args.certify,
    )
    start = time.perf_counter()
    results = []
    with contextlib.ExitStack() as stack:
        fh = (
            stack.enter_context(Path(args.out).open("w", encoding="utf-8"))
            if args.out
            else None
        )
        for result in runner.run(tasks):
            results.append(result)
            if fh is not None:
                fh.write(dump_jsonl_line(result.to_dict()) + "\n")
                fh.flush()
    elapsed = time.perf_counter() - start
    stats = runner.stats
    print(
        f"batch: {stats.total} instances ({stats.solved} solved, "
        f"{stats.cached} cached, {stats.errors} errors) with "
        f"{args.workers} worker(s) in {elapsed:.3f}s "
        f"(solver time {stats.wall_time_s:.3f}s)"
    )
    if args.out:
        print(f"results written to {args.out}")
    if args.cache:
        print(f"cache: {args.cache}")
    if not args.no_summary:
        from repro.analysis.suites import batch_summary_table

        print(batch_summary_table(results, title="per-algorithm summary"))
    return 1 if stats.errors else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.engine import EngineService, serve_tcp

    def announce(address) -> None:
        host, port = address
        print(f"serving on {host}:{port}", file=sys.stderr)

    if args.port is not None and not args.sync:
        # the default TCP path: the concurrent asyncio tier
        import asyncio

        from repro.engine import AsyncEngineService, serve_async

        service = AsyncEngineService(
            cache=args.cache_dir,
            algorithm=args.algorithm,
            workers=args.workers,
            max_inflight=args.max_inflight,
            max_queue=args.max_queue,
        )
        try:
            served = asyncio.run(
                serve_async(
                    service,
                    host=args.host,
                    port=args.port,
                    backlog=args.backlog,
                    max_requests=args.max_requests,
                    ready=announce,
                    stats_interval=args.stats_interval,
                )
            )
        except KeyboardInterrupt:
            served = service.stats.requests
        finally:
            service.close()
    elif args.port is not None:
        service = EngineService(cache=args.cache_dir, algorithm=args.algorithm)
        served = serve_tcp(
            service,
            host=args.host,
            port=args.port,
            max_requests=args.max_requests,
            ready=announce,
            backlog=args.backlog,
        )
    else:
        service = EngineService(cache=args.cache_dir, algorithm=args.algorithm)
        source = sys.stdin
        if args.max_requests is not None:
            from itertools import islice

            # count requests, not raw lines: serve_stream skips blank
            # lines without answering them, and the TCP path's
            # max_requests counts answered requests too
            source = islice(
                (line for line in sys.stdin if line.strip()),
                args.max_requests,
            )
        service.serve_stream(source, sys.stdout)
        served = service.stats.requests
    stats = service.stats
    print(
        f"serve: {served} request(s) ({stats.solved} solved, "
        f"{stats.cached} cached, {stats.coalesced} coalesced, "
        f"{stats.rejected} rejected, {stats.errors} errors)",
        file=sys.stderr,
    )
    # mirror `repro batch`: a shell pipeline gating on the exit code
    # must see request errors, not a blanket 0
    return 1 if stats.errors else 0


def _cmd_certify(args: argparse.Namespace) -> int:
    from repro.analysis.suites import certification_suite, violation_table
    from repro.certify import VIOLATION_STATUSES, audit_guarantees
    from repro.engine import ALGORITHMS
    from repro.io import write_jsonl

    algorithms = (
        None
        if args.algorithms is None
        else tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
    )
    if algorithms is not None:
        unknown = sorted(set(algorithms) - set(ALGORITHMS))
        if unknown:
            # a typo must not read as "certification sweep clean (0 audits)"
            known = ", ".join(sorted(ALGORITHMS))
            raise ReproError(
                f"unknown algorithm(s) {unknown}; known: {known}"
            )
    if args.instance is not None:
        from pathlib import Path

        from repro.certify import audit_instance

        instance = load_instance(args.instance)
        suite = [instance]
        rows = audit_instance(
            Path(args.instance).stem,
            instance,
            algorithms=algorithms,
            oracle_max_n=args.oracle_max_n,
            oracle_workers=args.workers,
        )
    else:
        suite = certification_suite(
            n=args.n, m=args.m, seeds=args.seeds, seed=args.seed
        )
        rows = audit_guarantees(
            suite,
            algorithms=algorithms,
            oracle_max_n=args.oracle_max_n,
            oracle_workers=args.workers,
        )
    if args.out:
        write_jsonl((row.to_dict() for row in rows), args.out)
        print(f"{len(rows)} audit rows written to {args.out}")
    print(violation_table(rows))
    violations = [r for r in rows if r.status in VIOLATION_STATUSES]
    print(
        f"certify: {len(suite)} instances, {len(rows)} audits, "
        f"{len(violations)} violation(s)"
    )
    return 1 if violations else 0


def _cmd_perf_check(directory: str, allow_dirty: bool = False) -> int:
    from pathlib import Path

    from repro.exceptions import BenchSchemaError
    from repro.io import load_json
    from repro.perf import validate_bench_record

    def dirty_rev(data: object) -> str | None:
        # records measured on a modified tree carry a "-dirty" git_rev
        # suffix (see repro.perf.record.git_revision) and are not
        # reproducible from any commit — reject unless --allow-dirty
        if allow_dirty or not isinstance(data, dict):
            return None
        rev = data.get("git_rev")
        if isinstance(rev, str) and rev.endswith("-dirty"):
            return rev
        return None

    root = Path(directory)
    checked = 0
    failures: list[str] = []
    for path in sorted(root.glob("BENCH_*.json")):
        checked += 1
        try:
            data = load_json(path)
            validate_bench_record(data)
        except (BenchSchemaError, ValueError) as exc:
            failures.append(f"{path.name}: {exc}")
            continue
        if (rev := dirty_rev(data)) is not None:
            failures.append(
                f"{path.name}: dirty-tree git_rev {rev!r} "
                "(re-measure on a clean tree or pass --allow-dirty)"
            )
    trajectory = root / "BENCH_trajectory.jsonl"
    if trajectory.exists():
        # parse line-by-line: one truncated append (a killed CI run) must
        # report as a violation, not crash the gate and swallow the rest
        import json

        # the trajectory is append-only: timestamps must never go
        # backwards (an out-of-order line means a hand edit or a merge
        # gone wrong) and a (experiment_id, git_rev) pair must appear at
        # most once (a duplicate means the same measurement was appended
        # twice instead of re-measured on a new revision)
        prev_stamp: tuple[str, int] | None = None
        seen_pairs: dict[tuple[str, str], int] = {}
        for i, line in enumerate(
            trajectory.read_text(encoding="utf-8").splitlines()
        ):
            if not line.strip():
                continue
            checked += 1
            try:
                data = json.loads(line)
                validate_bench_record(data)
            except (BenchSchemaError, json.JSONDecodeError) as exc:
                failures.append(f"{trajectory.name}:{i}: {exc}")
                continue
            if (rev := dirty_rev(data)) is not None:
                failures.append(
                    f"{trajectory.name}:{i}: dirty-tree git_rev {rev!r} "
                    "(re-measure on a clean tree or pass --allow-dirty)"
                )
            stamp = data.get("timestamp")
            if isinstance(stamp, str):
                # ISO-8601 UTC strings order lexicographically
                if prev_stamp is not None and stamp < prev_stamp[0]:
                    failures.append(
                        f"{trajectory.name}:{i}: timestamp {stamp!r} is "
                        f"before line {prev_stamp[1]}'s {prev_stamp[0]!r} "
                        "(the trajectory is append-only)"
                    )
                prev_stamp = (stamp, i)
            pair = (str(data.get("experiment_id")), str(data.get("git_rev")))
            if pair in seen_pairs:
                failures.append(
                    f"{trajectory.name}:{i}: duplicate (experiment_id, "
                    f"git_rev) {pair!r} (first at line {seen_pairs[pair]}; "
                    "re-measure on a new revision instead of re-appending)"
                )
            else:
                seen_pairs[pair] = i
    for failure in failures:
        print(f"SCHEMA VIOLATION {failure}", file=sys.stderr)
    print(
        f"perf --check: {checked} record(s) in {root}, "
        f"{len(failures)} violation(s)"
    )
    if checked == 0:
        print(f"error: no BENCH_*.json artifacts found in {root}", file=sys.stderr)
        return 2
    return 1 if failures else 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.perf import profile_top, write_bench_record
    from repro.perf.scenarios import SCENARIO_NAMES, run_scenario

    if args.check is not None:
        return _cmd_perf_check(args.check, allow_dirty=args.allow_dirty)
    targets = SCENARIO_NAMES if args.target == "all" else (args.target,)
    out_dir = (
        Path(args.out_dir)
        if args.out_dir is not None
        else Path(__file__).resolve().parents[2] / "benchmarks" / "out"
    )
    for target in targets:
        outcome = run_scenario(
            target, repeat=args.repeat, warmup=args.warmup, smoke=args.smoke
        )
        record = outcome.record
        print(
            format_table(
                list(record.columns),
                [list(row) for row in record.rows],
                title=f"{record.experiment_id} @ {record.git_rev} "
                f"(repeat={args.repeat}, warmup={args.warmup}"
                f"{', smoke' if args.smoke else ''})",
            )
        )
        path = write_bench_record(record, out_dir)
        print(f"[bench record written to {path}]\n")
        if args.profile:
            print(profile_top(outcome.profile_fn, label=target).table())
            print()
    return 0


def _cmd_experiment(experiment_id: str) -> int:
    import subprocess
    from pathlib import Path

    import re

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    matches = sorted(bench_dir.glob("bench_*.py"))
    wanted = experiment_id.lower()
    hits = []
    for p in matches:
        first_line = p.read_text(encoding="utf-8").split("\n", 1)[0].lower()
        declared = re.findall(r"\be\d+\b", first_line)
        if wanted in declared or wanted == p.stem:
            hits.append(p)
    if not hits:
        ids = ", ".join(p.stem for p in matches)
        print(f"no benchmark file mentions {experiment_id!r}; available: {ids}")
        return 1
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *[str(p) for p in hits],
        "--benchmark-only",
        "-q",
        "-s",
    ]
    print("running: " + " ".join(cmd))
    return subprocess.call(cmd)


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.report import collect_tables, render_report

    out_dir = Path(__file__).resolve().parents[2] / "benchmarks" / "out"
    tables = collect_tables(out_dir) if out_dir.is_dir() else []
    text = render_report(
        tables, title="Regenerated experiment tables (Pikies & Furmańczyk, IPPS 2022)"
    )
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"report with {len(tables)} tables written to {args.out}")
    else:
        print(text)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.staticcheck import get_rules, lint_paths, render_json, render_text

    if args.list_rules:
        for rule in get_rules():
            info = rule.describe()
            print(f"{info['id']}  {info['title']}")
            print(f"    scope:     {', '.join(info['scope'])}")
            print(f"    rationale: {info['rationale']}")
            print(f"    anchor:    {info['anchor']}")
            print(f"    fix:       {info['fix_hint']}")
        return 0

    try:
        ids = (
            tuple(p.strip() for p in args.rules.split(",") if p.strip())
            if args.rules
            else None
        )
        rules = get_rules(ids)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = lint_paths(args.paths, rules=rules)
    if args.format == "json":
        rendered = render_json(report)
    else:
        rendered = render_text(report, fix_hints=args.fix_hints)
    print(rendered)
    if args.out:
        # the artifact is always the machine-readable schema
        Path(args.out).write_text(render_json(report) + "\n", encoding="utf-8")
    return 0 if report.ok else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "info":
            return _cmd_info()
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "structure":
            return _cmd_structure(args)
        if args.command == "batch":
            return _cmd_batch(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "certify":
            return _cmd_certify(args)
        if args.command == "perf":
            return _cmd_perf(args)
        if args.command == "experiment":
            return _cmd_experiment(args.experiment_id)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "lint":
            return _cmd_lint(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
