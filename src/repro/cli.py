"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Package version and the algorithm registry.
``generate``
    Build an instance from a named graph family plus machine data and
    write it as JSON.
``solve``
    Load an instance JSON, run one algorithm (default: auto dispatch),
    print the outcome, optionally a Gantt chart, optionally save the
    schedule JSON.
``structure``
    Print the structural fingerprint of an instance's graph.
``experiment``
    Re-run one experiment (E1..) by invoking its benchmark file through
    pytest.

Every command is importable and unit-testable through :func:`main`.
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import Sequence

from repro import __version__
from repro.analysis.gantt import render_gantt, render_schedule_summary
from repro.analysis.tables import format_table, render_number
from repro.exceptions import ReproError
from repro.graphs import generators
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.structure import analyze_structure
from repro.io import (
    instance_to_dict,
    load_instance,
    save_json,
    schedule_to_dict,
)
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.instance import UniformInstance
from repro.solvers import available_algorithms, solve

__all__ = ["main", "build_parser"]

_FAMILIES = (
    "gnnp",
    "complete_bipartite",
    "crown",
    "path",
    "cycle",
    "star",
    "matching",
    "tree",
    "forest",
    "empty",
    "degree_bounded",
)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for doc generation/tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Scheduling with bipartite incompatibility graphs "
            "(Pikies & Furmańczyk, IPPS 2022) — reproduction toolkit"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package version and algorithm registry")

    gen = sub.add_parser("generate", help="generate an instance JSON")
    gen.add_argument("--family", choices=_FAMILIES, required=True)
    gen.add_argument("--n", type=int, default=20, help="size parameter")
    gen.add_argument("--b", type=int, default=None, help="second size (K_{a,b}, degree_bounded)")
    gen.add_argument("--p", type=float, default=0.1, help="edge probability (gnnp)")
    gen.add_argument("--max-degree", type=int, default=4, help="degree bound (degree_bounded)")
    gen.add_argument("--trees", type=int, default=3, help="tree count (forest)")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument(
        "--speeds",
        type=str,
        default="1,1,1",
        help="comma-separated machine speeds (fractions allowed: '3,3/2,1')",
    )
    gen.add_argument(
        "--jobs",
        type=str,
        default="unit",
        help="'unit', or comma-separated integer processing requirements",
    )
    gen.add_argument("--out", type=str, required=True, help="output JSON path")

    slv = sub.add_parser("solve", help="solve an instance JSON")
    slv.add_argument("instance", type=str, help="instance JSON path")
    slv.add_argument("--algorithm", type=str, default="auto")
    slv.add_argument("--gantt", action="store_true", help="print an ASCII Gantt chart")
    slv.add_argument(
        "--polish",
        action="store_true",
        help="apply local-search moves/swaps after solving (never regresses)",
    )
    slv.add_argument("--out", type=str, default=None, help="write schedule JSON here")

    st = sub.add_parser("structure", help="analyze an instance's graph structure")
    st.add_argument("instance", type=str, help="instance JSON path")

    exp = sub.add_parser("experiment", help="re-run one experiment (E1, E2, ...)")
    exp.add_argument("experiment_id", type=str, help="experiment id, e.g. E3")

    rep = sub.add_parser("report", help="aggregate benchmarks/out into one document")
    rep.add_argument("--out", type=str, default=None, help="write markdown here (default: stdout)")

    return parser


def _make_graph(args: argparse.Namespace) -> BipartiteGraph:
    n = args.n
    b = args.b if args.b is not None else n
    if args.family == "gnnp":
        return gnnp(n, args.p, seed=args.seed)
    if args.family == "complete_bipartite":
        return generators.complete_bipartite(n, b)
    if args.family == "crown":
        return generators.crown(n)
    if args.family == "path":
        return generators.path_graph(n)
    if args.family == "cycle":
        return generators.even_cycle(n)
    if args.family == "star":
        return generators.star(n)
    if args.family == "matching":
        return generators.matching_graph(n)
    if args.family == "tree":
        return generators.random_tree(n, seed=args.seed)
    if args.family == "forest":
        return generators.random_forest(n, args.trees, seed=args.seed)
    if args.family == "empty":
        return generators.empty_graph(n)
    if args.family == "degree_bounded":
        return generators.random_bipartite_degree_bounded(
            n, b, args.max_degree, seed=args.seed
        )
    raise ReproError(f"unhandled family {args.family}")  # pragma: no cover


def _cmd_info() -> int:
    print(f"repro {__version__} — Pikies & Furmańczyk (IPPS 2022), arXiv:2106.14354")
    rows = [
        [spec.name, spec.guarantee, spec.anchor]
        for spec in available_algorithms()
    ]
    print(format_table(["algorithm", "guarantee", "paper anchor"], rows))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    graph = _make_graph(args)
    speeds = sorted(
        (Fraction(s.strip()) for s in args.speeds.split(",")), reverse=True
    )
    if args.jobs == "unit":
        p = [1] * graph.n
    else:
        p = [int(x) for x in args.jobs.split(",")]
    instance = UniformInstance(graph, p, speeds)
    path = save_json(instance_to_dict(instance), args.out)
    print(
        f"wrote {path}: n={instance.n}, m={instance.m}, "
        f"|E|={graph.edge_count}, sum p={instance.total_p}"
    )
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    schedule = solve(instance, algorithm=args.algorithm)
    chosen = args.algorithm
    if args.polish and schedule.is_feasible():
        from repro.scheduling.local_search import improve_schedule

        result = improve_schedule(schedule)
        if result.improvement > 0:
            print(
                f"polish: {render_number(result.initial_makespan)} -> "
                f"{render_number(result.schedule.makespan)} "
                f"({result.moves} moves, {result.swaps} swaps)"
            )
        schedule = result.schedule
    print(
        f"algorithm={chosen}  Cmax={render_number(schedule.makespan)} "
        f"({schedule.makespan})  feasible={schedule.is_feasible()}"
    )
    print(render_schedule_summary(schedule))
    if args.gantt:
        print(render_gantt(schedule))
    if args.out:
        save_json(schedule_to_dict(schedule), args.out)
        print(f"schedule written to {args.out}")
    return 0


def _cmd_structure(args: argparse.Namespace) -> int:
    instance = load_instance(args.instance)
    structure = analyze_structure(instance.graph)
    print(structure.describe())
    env = "uniform (Q)" if isinstance(instance, UniformInstance) else "unrelated (R)"
    print(f"machine environment: {env}, m={instance.m}")
    applicable = [s.name for s in available_algorithms(instance)]
    print("applicable algorithms: " + ", ".join(applicable))
    return 0


def _cmd_experiment(experiment_id: str) -> int:
    import subprocess
    from pathlib import Path

    import re

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    matches = sorted(bench_dir.glob("bench_*.py"))
    wanted = experiment_id.lower()
    hits = []
    for p in matches:
        first_line = p.read_text(encoding="utf-8").split("\n", 1)[0].lower()
        declared = re.findall(r"\be\d+\b", first_line)
        if wanted in declared or wanted == p.stem:
            hits.append(p)
    if not hits:
        ids = ", ".join(p.stem for p in matches)
        print(f"no benchmark file mentions {experiment_id!r}; available: {ids}")
        return 1
    cmd = [
        sys.executable,
        "-m",
        "pytest",
        *[str(p) for p in hits],
        "--benchmark-only",
        "-q",
        "-s",
    ]
    print("running: " + " ".join(cmd))
    return subprocess.call(cmd)


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.analysis.report import collect_tables, render_report

    out_dir = Path(__file__).resolve().parents[2] / "benchmarks" / "out"
    tables = collect_tables(out_dir) if out_dir.is_dir() else []
    text = render_report(
        tables, title="Regenerated experiment tables (Pikies & Furmańczyk, IPPS 2022)"
    )
    if args.out:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"report with {len(tables)} tables written to {args.out}")
    else:
        print(text)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "info":
            return _cmd_info()
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "structure":
            return _cmd_structure(args)
        if args.command == "experiment":
            return _cmd_experiment(args.experiment_id)
        if args.command == "report":
            return _cmd_report(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
