"""The solver engine: registry, dispatch, portfolio, serving.

Four cooperating layers replace the old monolithic ``repro.solvers``:

* :mod:`repro.engine.registry` — a declarative plugin registry; each
  algorithm is an :class:`AlgorithmSpec` with structured
  :class:`Capability` requirements, and :func:`register_algorithm` makes
  any new method a one-call plugin;
* :mod:`repro.engine.dispatch` — capability matching with ranked
  ``auto`` selection and explain mode
  (:func:`explain_dispatch`, surfaced as ``repro solve --explain``);
* :mod:`repro.engine.portfolio` — race k eligible algorithms (optionally
  on a :class:`~repro.runtime.batch.BatchRunner` worker pool) and keep
  the best certified makespan, with early cutoff at the exact lower
  bound;
* :mod:`repro.engine.service` — the persistent serving loop behind
  ``repro serve``: JSONL requests over stdin/socket, canonical
  content-hash keys, repeat queries answered from a lazily-loaded
  sharded cache;
* :mod:`repro.engine.aserve` — the concurrent asyncio TCP tier (the
  default for ``repro serve --port``): many connections on one event
  loop, solves on a worker pool, in-flight coalescing by content hash,
  admission control, and a p50/p95/p99 latency surface.

``repro.solvers`` remains as a thin back-compat shim over this package.
"""

from repro.engine.registry import (
    ALGORITHMS,
    GRAPH_CLASSES,
    MACHINE_KINDS,
    REGISTRY,
    AlgorithmRegistry,
    AlgorithmSpec,
    Capability,
    register_algorithm,
    unregister_algorithm,
)
from repro.engine.dispatch import (
    DispatchEntry,
    DispatchReport,
    auto_choice,
    available_algorithms,
    explain_dispatch,
    solve,
)
from repro.engine.portfolio import (
    PortfolioEntry,
    PortfolioResult,
    portfolio_candidates,
    portfolio_solve,
)
from repro.engine.service import (
    SERVE_FORMAT,
    EngineService,
    LatencyReservoir,
    ServiceStats,
    build_solve_record,
    parse_solve_request,
    serve_tcp,
)
from repro.engine.aserve import (
    SERVE_FORMAT_V2,
    AsyncEngineService,
    serve_async,
)

__all__ = [
    "ALGORITHMS",
    "GRAPH_CLASSES",
    "MACHINE_KINDS",
    "REGISTRY",
    "AlgorithmRegistry",
    "AlgorithmSpec",
    "Capability",
    "register_algorithm",
    "unregister_algorithm",
    "DispatchEntry",
    "DispatchReport",
    "auto_choice",
    "available_algorithms",
    "explain_dispatch",
    "solve",
    "PortfolioEntry",
    "PortfolioResult",
    "portfolio_candidates",
    "portfolio_solve",
    "SERVE_FORMAT",
    "SERVE_FORMAT_V2",
    "EngineService",
    "AsyncEngineService",
    "LatencyReservoir",
    "ServiceStats",
    "build_solve_record",
    "parse_solve_request",
    "serve_tcp",
    "serve_async",
]
