"""Declarative algorithm registry: capabilities instead of closures.

Until PR 5 every algorithm's applicability lived in an ad-hoc predicate
closure inside ``solvers.py``; adding a backend meant editing that file
and hoping the closure agreed with the dispatch policy.  Here each
algorithm registers an :class:`AlgorithmSpec` carrying a structured
:class:`Capability` — machine environment, graph class, job shape,
machine-count bounds — that the dispatcher (:mod:`repro.engine.dispatch`)
can both *match* and *explain*.  New algorithms (in-tree or third-party
plugins) call :func:`register_algorithm` and immediately participate in
``solve``/``available_algorithms``/``repro info``/the certification
auditor, with no dispatch code touched.

The registry is ordered (registration order is the presentation order
everywhere) and the module-level :data:`REGISTRY` is pre-populated with
the paper's algorithm family; :data:`ALGORITHMS` is the same object under
its historical name, so ``repro.solvers.ALGORITHMS`` keeps working as a
live mapping view.

Note for multiprocessing users: worker processes re-import this module,
so plugins registered at runtime in the parent are visible to
:class:`~repro.runtime.batch.BatchRunner` workers only if registration
happens at import time of some module the worker also imports.  The
in-process serving layer (:mod:`repro.engine.service`) has no such
restriction.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Iterator

from repro.core.complete_multipartite import (
    schedule_complete_bipartite_unit,
    schedule_complete_multipartite_unit,
)
from repro.core.q2_unit_exact import q2_unit_exact
from repro.core.r2_fptas import r2_fptas
from repro.core.r2_two_approx import r2_two_approx
from repro.core.random_graph_scheduler import (
    random_graph_schedule,
    random_graph_schedule_balanced,
)
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.structure import (
    analyze_structure,
    as_bipartite_graph,
    is_bipartite_structure,
    is_block_structure,
    multipartite_decomposition,
)
from repro.scheduling.baselines import (
    bjw_identical_approx,
    r_color_split,
    two_machine_split,
    unconstrained_lpt,
)
from repro.scheduling.brute_force import brute_force_optimal
from repro.scheduling.conflict_split import conflict_color_split
from repro.scheduling.dual_approx import dual_approx_identical
from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
    UnrelatedInstance,
)
from repro.scheduling.list_scheduling import graph_aware_greedy
from repro.scheduling.lp_rounding import lst_two_approx
from repro.scheduling.schedule import Schedule

__all__ = [
    "MACHINE_KINDS",
    "GRAPH_CLASSES",
    "Capability",
    "AlgorithmSpec",
    "AlgorithmRegistry",
    "REGISTRY",
    "ALGORITHMS",
    "register_algorithm",
    "unregister_algorithm",
]

#: machine environments a capability can require
MACHINE_KINDS = ("any", "uniform", "unrelated")

#: graph classes a capability can require; ``complete_bipartite`` means
#: ``K_{a,b}`` plus isolated vertices (which covers edgeless graphs too),
#: ``bipartite`` any 2-colorable conflict graph, ``complete_multipartite``
#: classes of mutually-compatible jobs with all cross-class conflicts
#: (+ isolated vertices), ``block`` graphs whose biconnected components
#: are cliques
GRAPH_CLASSES = (
    "any",
    "edgeless",
    "complete_bipartite",
    "bipartite",
    "complete_multipartite",
    "block",
)


@dataclass(frozen=True)
class Capability:
    """Structured preconditions of one algorithm.

    Replaces the predicate closures of the pre-engine registry with
    declarative requirements the dispatcher can rank and explain:

    * ``machine_kind`` — required environment (``"uniform"`` = ``Q``,
      ``"unrelated"`` = ``R``, ``"any"``);
    * ``graph`` — required graph class (:data:`GRAPH_CLASSES`);
    * ``unit_jobs`` — require ``p_j = 1`` for every job (defined for the
      uniform environment, so it requires ``machine_kind="uniform"``);
    * ``identical`` — require identical machine speeds (``Q`` only);
    * ``min_machines`` / ``max_machines`` — bounds on ``m``
      (``max_machines=None`` means unbounded);
    * ``supports_eligibility`` — whether the method honours per-job
      machine-eligibility masks (``UniformInstance.eligible``); methods
      that don't are rejected on masked instances rather than silently
      producing mask-violating schedules.

    :meth:`evaluate` returns the *reasons* a requirement fails, which is
    what ``repro solve --explain`` surfaces per algorithm.
    """

    machine_kind: str = "any"
    graph: str = "any"
    unit_jobs: bool = False
    identical: bool = False
    min_machines: int = 1
    max_machines: int | None = None
    supports_eligibility: bool = False

    def __post_init__(self) -> None:
        if self.machine_kind not in MACHINE_KINDS:
            raise InvalidInstanceError(
                f"unknown machine kind {self.machine_kind!r}; "
                f"known: {', '.join(MACHINE_KINDS)}"
            )
        if self.graph not in GRAPH_CLASSES:
            raise InvalidInstanceError(
                f"unknown graph class {self.graph!r}; "
                f"known: {', '.join(GRAPH_CLASSES)}"
            )
        if self.min_machines < 1:
            raise InvalidInstanceError(
                f"min_machines must be >= 1, got {self.min_machines}"
            )
        if self.max_machines is not None and self.max_machines < self.min_machines:
            raise InvalidInstanceError(
                f"max_machines {self.max_machines} < min_machines "
                f"{self.min_machines}"
            )
        if self.unit_jobs and self.machine_kind != "uniform":
            # unit-job detection lives on UniformInstance; without the
            # kind requirement the capability would silently match no
            # instance at all — fail at construction, not at dispatch
            raise InvalidInstanceError(
                "unit_jobs=True requires machine_kind='uniform' "
                f"(got {self.machine_kind!r})"
            )

    def requirements(self) -> tuple[str, ...]:
        """Human-readable requirement list (for docs and explain mode)."""
        out: list[str] = []
        if self.machine_kind != "any":
            env = "Q" if self.machine_kind == "uniform" else "R"
            out.append(f"{self.machine_kind} machines ({env})")
        if self.graph == "edgeless":
            out.append("edgeless graph")
        elif self.graph == "complete_bipartite":
            out.append("K_{a,b} (+ isolated vertices)")
        elif self.graph == "bipartite":
            out.append("bipartite graph")
        elif self.graph == "complete_multipartite":
            out.append("complete multipartite (+ isolated vertices)")
        elif self.graph == "block":
            out.append("block graph")
        if self.unit_jobs:
            out.append("unit jobs")
        if self.identical:
            out.append("identical speeds")
        if self.max_machines == self.min_machines:
            out.append(f"m = {self.min_machines}")
        else:
            if self.min_machines > 1:
                out.append(f"m >= {self.min_machines}")
            if self.max_machines is not None:
                out.append(f"m <= {self.max_machines}")
        return tuple(out)

    def evaluate(
        self, instance: SchedulingInstance
    ) -> tuple[bool, tuple[str, ...]]:
        """``(matches, rejection reasons)`` for one instance.

        Every failed requirement contributes one reason (the tuple is
        empty exactly when the capability matches), so explain mode can
        report *all* the ways an algorithm misses, not just the first.
        """
        reasons: list[str] = []
        is_uniform = isinstance(instance, UniformInstance)
        is_unrelated = isinstance(instance, UnrelatedInstance)
        if self.machine_kind == "uniform" and not is_uniform:
            reasons.append("requires uniform machines (Q)")
        if self.machine_kind == "unrelated" and not is_unrelated:
            reasons.append("requires unrelated machines (R)")
        if instance.m < self.min_machines:
            reasons.append(
                f"requires m >= {self.min_machines} (instance has m = "
                f"{instance.m})"
            )
        if self.max_machines is not None and instance.m > self.max_machines:
            reasons.append(
                f"requires m <= {self.max_machines} (instance has m = "
                f"{instance.m})"
            )
        if self.unit_jobs and not (
            is_uniform and instance.has_unit_jobs
        ):
            if is_uniform:
                reasons.append("requires unit jobs (p_j = 1)")
            else:
                reasons.append("requires unit jobs on uniform machines")
        if self.identical and not (is_uniform and instance.is_identical):
            reasons.append("requires identical machine speeds")
        if self.graph == "edgeless" and instance.graph.edge_count != 0:
            reasons.append(
                f"requires an edgeless graph (instance has "
                f"{instance.graph.edge_count} edge(s))"
            )
        if self.graph == "complete_bipartite":
            structure = analyze_structure(instance.graph)
            if structure.complete_bipartite_free is None:
                reasons.append(
                    "requires K_{a,b} plus isolated vertices"
                )
        elif self.graph == "bipartite":
            if not is_bipartite_structure(instance.graph):
                reasons.append("requires a bipartite conflict graph")
        elif self.graph == "complete_multipartite":
            if multipartite_decomposition(instance.graph) is None:
                reasons.append(
                    "requires a complete multipartite conflict graph "
                    "(+ isolated vertices)"
                )
        elif self.graph == "block":
            if not is_block_structure(instance.graph):
                reasons.append("requires a block conflict graph")
        if (
            not self.supports_eligibility
            and is_uniform
            and instance.has_eligibility
        ):
            reasons.append("cannot honour machine-eligibility masks")
        return (not reasons, tuple(reasons))

    def check(self, instance: SchedulingInstance) -> bool:
        """Boolean form of :meth:`evaluate` (the derived ``applies``)."""
        return self.evaluate(instance)[0]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm.

    ``capability`` states the *preconditions* declaratively; when no
    explicit ``applies`` predicate is given, it is derived from the
    capability (legacy specs may still pass a closure — the auditor's
    test fixtures do).  Preconditions do not promise the method is a
    good idea (brute force applies to everything).

    ``guarantee`` is the human-readable approximation guarantee, with
    its paper anchor.  ``ratio_bound`` is the *machine-checkable* form:
    given an instance it returns the exact rational ``B`` such that the
    paper claims ``Cmax <= B * OPT`` (``1`` for exact methods, ``None``
    when no worst-case ratio is declared — heuristics, a.a.s.-only
    results, and the irrational ``sqrt(sum p_j)`` guarantee, which
    :mod:`repro.certify.auditor` checks exactly via squared arithmetic
    instead).

    ``auto_rank`` places the algorithm in the ``auto`` dispatch policy:
    among applicable ranked methods the lowest rank wins; ``None`` keeps
    the method callable by name only.  ``auto_when`` adds *selection*
    constraints on top of the preconditions (graph-blind baselines apply
    everywhere but are only ever auto-chosen on edgeless graphs).
    """

    name: str
    guarantee: str
    anchor: str
    applies: Callable[[SchedulingInstance], bool] | None = None
    run: Callable[[SchedulingInstance], Schedule] | None = None
    ratio_bound: Callable[[SchedulingInstance], Fraction | None] | None = None
    guarantee_check: (
        Callable[[SchedulingInstance, Fraction, Fraction], bool] | None
    ) = None
    """Exact predicate ``(instance, makespan, optimum) -> holds?`` for
    guarantees a rational ``ratio_bound`` cannot express (Theorem 9's
    irrational ``sqrt(sum p_j)``, checked via squared arithmetic).  Must
    be monotone in the optimum: holding against a lower bound must imply
    holding against the true optimum, so the auditor may use either."""
    graph_blind: bool = False
    """Whether the method ignores the incompatibility graph entirely.

    Graph-blind baselines deliberately emit infeasible schedules on
    graphs with edges; the certification auditor treats that as
    expected behaviour rather than a violation, and the portfolio
    excludes them on graphs with edges."""
    exponential: bool = False
    """Whether the runtime is exponential in ``n`` (exhaustive search).

    The certification auditor only runs such methods inside its oracle
    cut-off; the portfolio never races them."""
    capability: Capability | None = None
    auto_rank: int | None = None
    auto_when: Capability | None = None

    def __post_init__(self) -> None:
        if self.run is None:
            raise InvalidInstanceError(
                f"algorithm {self.name!r} registered without a run callable"
            )
        if self.applies is None:
            cap = self.capability if self.capability is not None else Capability()
            object.__setattr__(self, "applies", cap.check)

    def matches(
        self, instance: SchedulingInstance
    ) -> tuple[bool, tuple[str, ...]]:
        """``(applies, rejection reasons)`` — the explainable form.

        Capability-backed specs report structured reasons; legacy specs
        with only a predicate closure degrade to a generic reason.
        """
        if self.capability is not None:
            ok, reasons = self.capability.evaluate(instance)
            derived = (
                getattr(self.applies, "__func__", None) is Capability.check
            )
            # only consult an *explicit* predicate narrower than the
            # capability — the derived applies IS capability.check, and
            # re-running it would double every explain pass (including
            # the analyze_structure graph scan)
            if ok and not derived and not self.applies(instance):
                return False, ("rejected by the applies predicate",)
            return ok, reasons
        if self.applies(instance):
            return True, ()
        return False, ("rejected by the applies predicate",)

    def execute(self, instance: SchedulingInstance) -> Schedule:
        """Run the algorithm, coercing the graph representation if needed.

        Bipartite-capability algorithms are gated *structurally*
        (:func:`~repro.graphs.structure.is_bipartite_structure` accepts
        any 2-colorable graph), but several implementations —
        Hopcroft–Karp matching, König vertex covers — need the concrete
        :class:`~repro.graphs.bipartite.BipartiteGraph` with its side
        witness.  When the instance stores its graph in another
        representation (a forest-shaped
        :class:`~repro.graphs.conflict.BlockGraph`, say), run on a
        converted copy and re-home the schedule on the original
        instance.  All engine entry points (dispatch, portfolio,
        auditor) go through here rather than calling ``run`` directly.
        """
        run = self.run
        if run is None:  # pragma: no cover - __post_init__ guarantees
            raise InvalidInstanceError(
                f"algorithm {self.name!r} has no run callable"
            )
        cap = self.capability
        if (
            cap is not None
            and cap.graph in ("bipartite", "complete_bipartite")
            and not isinstance(instance.graph, BipartiteGraph)
            and is_bipartite_structure(instance.graph)
        ):
            coerced = instance.with_graph(as_bipartite_graph(instance.graph))
            schedule = run(coerced)
            return Schedule(instance, schedule.assignment)
        return run(instance)


class AlgorithmRegistry(Mapping):
    """Ordered ``name -> AlgorithmSpec`` mapping with plugin support.

    A :class:`~collections.abc.Mapping`, so every consumer of the old
    ``ALGORITHMS`` dict (iteration, ``in``, ``[...]``, ``.values()``)
    keeps working — and sees plugins the moment they register.
    """

    def __init__(self) -> None:
        self._specs: dict[str, AlgorithmSpec] = {}

    def __getitem__(self, name: str) -> AlgorithmSpec:
        return self._specs[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    def register(
        self, spec: AlgorithmSpec, replace: bool = False
    ) -> AlgorithmSpec:
        """Add one spec; re-registering a name needs ``replace=True``.

        Returns the spec so the call composes (``spec =
        registry.register(AlgorithmSpec(...))``).
        """
        if not replace and spec.name in self._specs:
            raise InvalidInstanceError(
                f"algorithm {spec.name!r} is already registered "
                "(pass replace=True to override)"
            )
        self._specs[spec.name] = spec
        return spec

    def unregister(self, name: str) -> AlgorithmSpec:
        """Remove and return one spec (unknown names raise)."""
        try:
            return self._specs.pop(name)
        except KeyError:
            raise InvalidInstanceError(
                f"algorithm {name!r} is not registered"
            ) from None

    def specs(self) -> list[AlgorithmSpec]:
        """All specs in registration order."""
        return list(self._specs.values())


# --------------------------------------------------------------------- #
# built-in algorithm family
# --------------------------------------------------------------------- #


def _run_r2_fptas(instance: SchedulingInstance) -> Schedule:
    return r2_fptas(instance, eps=Fraction(1, 10))


def _run_q2_fptas(instance: SchedulingInstance) -> Schedule:
    """Two uniform machines are a special case of two unrelated ones, so
    Algorithm 5 applies verbatim (the paper's Theorem 4 route)."""
    two_machine = r2_fptas(instance.to_unrelated(), eps=Fraction(1, 10))
    return Schedule(instance, two_machine.assignment)


def _run_dual_approx(instance: SchedulingInstance) -> Schedule:
    return dual_approx_identical(instance, Fraction(1, 3)).schedule


def _run_lst(instance: SchedulingInstance) -> Schedule:
    return lst_two_approx(instance).schedule


def _run_sqrt(instance: SchedulingInstance) -> Schedule:
    return sqrt_approx_schedule(instance).schedule


def _run_greedy(instance: SchedulingInstance) -> Schedule:
    schedule = graph_aware_greedy(instance)
    if schedule is None:
        raise InvalidInstanceError(
            "graph-aware greedy ran out of conflict-free machines; "
            "use a guaranteed method (solve with algorithm='auto')"
        )
    return schedule


def _ratio_one(_: SchedulingInstance) -> Fraction:
    return Fraction(1)


def _ratio_const(value: Fraction) -> Callable[[SchedulingInstance], Fraction]:
    return lambda _: value


def _ratio_two_if_edgeless(instance: SchedulingInstance) -> Fraction | None:
    """Graph-blind 2-approximations only promise their ratio when the
    incompatibility graph has no edges (otherwise they may be
    infeasible, and no ratio is declared)."""
    return Fraction(2) if instance.graph.edge_count == 0 else None


def _sqrt_guarantee_check(
    instance: SchedulingInstance, makespan: Fraction, optimum: Fraction
) -> bool:
    """Theorem 9 without radicals: ``Cmax^2 <= sum p_j * OPT^2``.

    Monotone in ``optimum``, as :class:`AlgorithmSpec.guarantee_check`
    requires.
    """
    return makespan * makespan <= instance.total_p * optimum * optimum


_EDGELESS = Capability(graph="edgeless")

_BUILTIN_SPECS = (
    AlgorithmSpec(
        "complete_multipartite",
        "exact (unary encoding)",
        "[20]/[24], related work",
        run=schedule_complete_bipartite_unit,
        ratio_bound=_ratio_one,
        capability=Capability(
            machine_kind="uniform", graph="complete_bipartite", unit_jobs=True
        ),
        auto_rank=10,
    ),
    AlgorithmSpec(
        "complete_multipartite_min_time",
        "exact (unary encoding), k >= 2 classes",
        "[24] / arXiv:2010.13207",
        run=schedule_complete_multipartite_unit,
        ratio_bound=_ratio_one,
        capability=Capability(
            machine_kind="uniform",
            graph="complete_multipartite",
            unit_jobs=True,
        ),
        auto_rank=15,
    ),
    AlgorithmSpec(
        "q2_unit_exact",
        "exact, O(n^3)",
        "Theorem 4",
        run=q2_unit_exact,
        ratio_bound=_ratio_one,
        capability=Capability(
            machine_kind="uniform",
            graph="bipartite",
            unit_jobs=True,
            min_machines=2,
            max_machines=2,
        ),
        auto_rank=20,
    ),
    AlgorithmSpec(
        "q2_fptas",
        "1 + eps on two uniform machines (eps = 1/10 here)",
        "Theorem 4's FPTAS route / Algorithm 5",
        run=_run_q2_fptas,
        ratio_bound=_ratio_const(Fraction(11, 10)),
        capability=Capability(
            machine_kind="uniform",
            graph="bipartite",
            min_machines=2,
            max_machines=2,
        ),
        auto_rank=40,
    ),
    AlgorithmSpec(
        "dual_approx",
        "1 + eps (eps = 1/3 here)",
        "[11], related work",
        run=_run_dual_approx,
        ratio_bound=_ratio_const(Fraction(4, 3)),
        capability=Capability(
            machine_kind="uniform", graph="edgeless", identical=True
        ),
        auto_rank=30,
    ),
    AlgorithmSpec(
        "lpt",
        "graph-blind LPT (feasible iff graph edgeless)",
        "classical",
        run=unconstrained_lpt,
        ratio_bound=_ratio_two_if_edgeless,
        graph_blind=True,
        capability=Capability(machine_kind="uniform"),
        auto_rank=50,
        auto_when=_EDGELESS,
    ),
    AlgorithmSpec(
        "sqrt_approx",
        "sqrt(sum p_j)-approximate",
        "Algorithm 1 / Theorem 9",
        run=_run_sqrt,
        # sqrt(sum p_j) is irrational, so no rational ratio_bound;
        # the predicate checks Theorem 9 exactly in squared form
        guarantee_check=_sqrt_guarantee_check,
        capability=Capability(
            machine_kind="uniform", graph="bipartite", min_machines=2
        ),
        auto_rank=60,
    ),
    AlgorithmSpec(
        "random_graph",
        "a.a.s. 2-approximate on G(n,n,p), unit jobs",
        "Algorithm 2 / Theorem 19",
        run=random_graph_schedule,
        capability=Capability(
            machine_kind="uniform", graph="bipartite", unit_jobs=True
        ),
    ),
    AlgorithmSpec(
        "random_graph_balanced",
        "Algorithm 2 + isolated-job balancing (Sec. 6 improvement)",
        "Section 6 open problems",
        run=random_graph_schedule_balanced,
        capability=Capability(
            machine_kind="uniform", graph="bipartite", unit_jobs=True
        ),
    ),
    AlgorithmSpec(
        "bjw",
        "2-approximate, identical machines, m >= 3",
        "[3], related work",
        run=bjw_identical_approx,
        ratio_bound=_ratio_const(Fraction(2)),
        capability=Capability(
            machine_kind="uniform",
            graph="bipartite",
            identical=True,
            min_machines=3,
        ),
    ),
    AlgorithmSpec(
        "two_machine_split",
        "feasible two-machine split (no ratio bound)",
        "Algorithm 1 fallback shape",
        run=two_machine_split,
        capability=Capability(
            machine_kind="uniform", graph="bipartite", min_machines=2
        ),
    ),
    AlgorithmSpec(
        "r2_two_approx",
        "2-approximate, O(n)",
        "Algorithm 4 / Theorem 21",
        run=r2_two_approx,
        ratio_bound=_ratio_const(Fraction(2)),
        capability=Capability(
            machine_kind="unrelated",
            graph="bipartite",
            min_machines=2,
            max_machines=2,
        ),
    ),
    AlgorithmSpec(
        "r2_fptas",
        "1 + eps (eps = 1/10 here)",
        "Algorithm 5 / Theorem 22",
        run=_run_r2_fptas,
        ratio_bound=_ratio_const(Fraction(11, 10)),
        capability=Capability(
            machine_kind="unrelated",
            graph="bipartite",
            min_machines=2,
            max_machines=2,
        ),
        auto_rank=110,
    ),
    AlgorithmSpec(
        "lst",
        "graph-blind 2-approx for R||Cmax",
        "[18], related work",
        run=_run_lst,
        ratio_bound=_ratio_two_if_edgeless,
        graph_blind=True,
        capability=Capability(machine_kind="unrelated"),
        auto_rank=120,
        auto_when=_EDGELESS,
    ),
    AlgorithmSpec(
        "r_color_split",
        "feasible color split (no ratio bound; cf. Theorem 24)",
        "Theorem 24 context",
        run=r_color_split,
        capability=Capability(
            machine_kind="unrelated", graph="bipartite", min_machines=2
        ),
        auto_rank=130,
    ),
    AlgorithmSpec(
        "conflict_color_split",
        "feasible MCS-coloring split (exact infeasibility detection on "
        "block / complete multipartite graphs; no ratio bound)",
        "arXiv:2207.05868 context",
        run=conflict_color_split,
        capability=Capability(min_machines=2, supports_eligibility=True),
        auto_rank=500,
    ),
    AlgorithmSpec(
        "greedy",
        "graph-aware greedy heuristic (no guarantee, may fail)",
        "baseline",
        run=_run_greedy,
        capability=Capability(supports_eligibility=True),
    ),
    AlgorithmSpec(
        "brute_force",
        "exact (exponential time)",
        "ground truth",
        run=brute_force_optimal,
        ratio_bound=_ratio_one,
        exponential=True,
        capability=Capability(supports_eligibility=True),
    ),
)

#: the live registry every engine entry point consults
REGISTRY = AlgorithmRegistry()
for _spec in _BUILTIN_SPECS:
    REGISTRY.register(_spec)
del _spec

#: historical name — the same live mapping (``repro.solvers.ALGORITHMS``)
ALGORITHMS = REGISTRY


def register_algorithm(
    spec: AlgorithmSpec, replace: bool = False
) -> AlgorithmSpec:
    """Register a plugin algorithm with the global :data:`REGISTRY`.

    The one-call plugin entry point: after this, the algorithm is
    dispatchable by name through :func:`repro.engine.solve`, listed by
    ``repro info``/``available_algorithms``, auditable by
    :mod:`repro.certify`, and (when ``auto_rank`` is set) eligible for
    ``auto`` selection and portfolio racing.  Racing on a *worker pool*
    additionally needs the registration to happen at import time (see
    the module docstring) — a pool race reports a runtime-only plugin as
    an errored entry rather than running it.
    """
    return REGISTRY.register(spec, replace=replace)


def unregister_algorithm(name: str) -> AlgorithmSpec:
    """Remove a plugin from the global :data:`REGISTRY` (tests, teardown)."""
    return REGISTRY.unregister(name)
