"""Portfolio execution: race k eligible algorithms, keep the best.

``auto`` dispatch picks the single method the policy ranks strongest,
but on concrete instances a lower-ranked method (or a heuristic with no
worst-case guarantee) often lands a better makespan.  The portfolio runs
up to ``k`` eligible algorithms — sequentially in-process, or
concurrently on a :class:`~repro.runtime.batch.BatchRunner`'s worker
pool — and returns the best *feasible* schedule, with an early cutoff
the moment some result matches the instance's exact lower bound
(:mod:`repro.scheduling.bounds` via
:func:`repro.certify.validators.instance_lower_bound`): a schedule at
the lower bound is provably optimal, so the rest of the race is moot.

By construction the portfolio is never worse than ``auto``: the auto
choice is always the first candidate, and losing entries are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from time import perf_counter
from typing import TYPE_CHECKING

from repro.certify.validators import instance_lower_bound
from repro.engine.dispatch import auto_choice
from repro.engine.registry import REGISTRY, AlgorithmRegistry
from repro.exceptions import InvalidInstanceError, ReproError
from repro.scheduling.instance import SchedulingInstance
from repro.scheduling.schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    import multiprocessing.pool

    from repro.runtime.batch import BatchRunner

__all__ = [
    "PortfolioEntry",
    "PortfolioResult",
    "portfolio_candidates",
    "portfolio_solve",
]


@dataclass(frozen=True)
class PortfolioEntry:
    """One raced algorithm's outcome.

    ``makespan`` is ``None`` when the algorithm errored (``error`` holds
    the declared failure) or produced an infeasible schedule
    (``feasible=False``), or when the race was cut off before this
    entry ran (``skipped=True``).
    """

    algorithm: str
    makespan: Fraction | None
    wall_time_s: float
    feasible: bool
    error: str | None = None
    skipped: bool = False


@dataclass(frozen=True)
class PortfolioResult:
    """The winning schedule of one portfolio race, with the full field."""

    chosen: str
    makespan: Fraction
    schedule: Schedule
    lower_bound: Fraction | None
    cutoff: bool
    entries: tuple[PortfolioEntry, ...]
    wall_time_s: float

    def table(self) -> str:
        """Aligned monospace rendering of the race (CLI output)."""
        from repro.analysis.tables import format_table

        rows = []
        for e in self.entries:
            if e.skipped:
                outcome = "skipped (cutoff)"
            elif e.error is not None:
                outcome = f"error: {e.error}"
            elif not e.feasible:
                outcome = "infeasible"
            else:
                outcome = "ok"
            rows.append(
                [
                    ("->" if e.algorithm == self.chosen else "") + e.algorithm,
                    "-" if e.makespan is None else str(e.makespan),
                    f"{e.wall_time_s * 1e3:.2f}",
                    outcome,
                ]
            )
        title = (
            f"portfolio: {self.chosen!r} wins with Cmax={self.makespan}"
            + (" (provably optimal, early cutoff)" if self.cutoff else "")
        )
        return format_table(
            ["algorithm", "Cmax", "time (ms)", "outcome"], rows, title=title
        )


def portfolio_candidates(
    instance: SchedulingInstance,
    k: int = 3,
    registry: AlgorithmRegistry | None = None,
) -> list[str]:
    """Up to ``k`` algorithm names worth racing on ``instance``.

    The ``auto`` choice always leads (so the portfolio can never lose to
    it); the remaining slots fill with other applicable methods in rank
    order, then registration order.  Excluded: ``exponential`` searches
    (they would dominate any race) and, on graphs with edges,
    ``graph_blind`` baselines (their schedules would be infeasible and
    could never win).

    Raises whatever :func:`auto_choice` raises — an instance auto
    dispatch rejects as infeasible has no portfolio either.
    """
    if k < 1:
        raise InvalidInstanceError(f"portfolio size must be >= 1, got {k}")
    registry = REGISTRY if registry is None else registry
    first = auto_choice(instance, registry)
    names = [first]
    edged = instance.graph.edge_count > 0
    eligible = [
        spec
        for spec in registry.values()
        if spec.name != first
        and not spec.exponential
        and not (spec.graph_blind and edged)
        and spec.applies(instance)
    ]
    ranked = sorted(
        range(len(eligible)),
        key=lambda i: (
            eligible[i].auto_rank is None,
            eligible[i].auto_rank if eligible[i].auto_rank is not None else i,
            i,
        ),
    )
    names.extend(eligible[i].name for i in ranked)
    return names[:k]


def _better(candidate: Fraction, incumbent: Fraction | None) -> bool:
    return incumbent is None or candidate < incumbent


def portfolio_solve(
    instance: SchedulingInstance,
    k: int = 3,
    runner: "BatchRunner | None" = None,
    registry: AlgorithmRegistry | None = None,
    early_cutoff: bool = True,
) -> PortfolioResult:
    """Race up to ``k`` eligible algorithms and keep the best schedule.

    Parameters
    ----------
    instance:
        The instance to schedule.
    k:
        Maximum number of algorithms raced
        (:func:`portfolio_candidates`).
    runner:
        A :class:`~repro.runtime.batch.BatchRunner`.  With
        ``runner.workers > 1`` the race fans out over the runner's
        persistent worker pool and entries finish in completion order;
        otherwise (or with ``runner=None``) candidates run sequentially
        in-process.  The best makespan is identical either way (every
        registered solver is deterministic, and makespan ties break
        towards the earlier candidate); only under ``early_cutoff`` may
        the two modes report different — equally optimal — winners,
        because the pool race stops at whichever candidate *first*
        proves the lower bound.
    registry:
        Registry to race over (default: the global engine registry).
    early_cutoff:
        Stop the race as soon as some feasible makespan reaches the
        instance's exact lower bound (the schedule is then provably
        optimal); remaining candidates are reported ``skipped``.

    Returns
    -------
    PortfolioResult
        Winner, per-entry outcomes, and whether the cutoff fired.

    Raises
    ------
    repro.exceptions.InfeasibleInstanceError
        If auto dispatch already rejects the instance.
    repro.exceptions.ReproError
        If *every* raced candidate failed or produced an infeasible
        schedule (cannot happen with the built-in registry: the auto
        choice is always feasible there).
    """
    registry = REGISTRY if registry is None else registry
    candidates = portfolio_candidates(instance, k, registry)
    lower = instance_lower_bound(instance)
    start = perf_counter()

    pool = runner.worker_pool() if runner is not None else None
    if pool is None:
        entries, best_name, best_schedule, cutoff = _race_sequential(
            instance, candidates, registry, lower, early_cutoff
        )
    else:
        entries, best_name, best_schedule, cutoff = _race_pool(
            instance, candidates, pool, lower, early_cutoff
        )

    wall = perf_counter() - start
    if best_name is None or best_schedule is None:
        detail = "; ".join(
            f"{e.algorithm}: {e.error or 'infeasible'}" for e in entries
        )
        raise ReproError(f"portfolio found no feasible schedule ({detail})")
    return PortfolioResult(
        chosen=best_name,
        makespan=best_schedule.makespan,
        schedule=best_schedule,
        lower_bound=lower,
        cutoff=cutoff,
        entries=tuple(entries),
        wall_time_s=wall,
    )


def _race_sequential(
    instance: SchedulingInstance,
    candidates: list[str],
    registry: AlgorithmRegistry,
    lower: Fraction | None,
    early_cutoff: bool,
) -> tuple[list[PortfolioEntry], str | None, Schedule | None, bool]:
    entries: list[PortfolioEntry] = []
    best_name: str | None = None
    best_schedule: Schedule | None = None
    cutoff = False
    for position, name in enumerate(candidates):
        if cutoff:
            entries.append(
                PortfolioEntry(name, None, 0.0, False, skipped=True)
            )
            continue
        spec = registry[name]
        t0 = perf_counter()
        try:
            schedule = spec.execute(instance)
        except ReproError as exc:
            entries.append(
                PortfolioEntry(
                    name, None, perf_counter() - t0, False, error=str(exc)
                )
            )
            continue
        except Exception as exc:  # noqa: BLE001 — one crashing (plugin)
            # candidate must not abort the race and discard the others'
            # finished schedules; the typed error keeps the defect loud
            entries.append(
                PortfolioEntry(
                    name,
                    None,
                    perf_counter() - t0,
                    False,
                    error=f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        elapsed = perf_counter() - t0
        feasible = schedule.is_feasible()
        entries.append(
            PortfolioEntry(
                name, schedule.makespan if feasible else None, elapsed, feasible
            )
        )
        if feasible and _better(
            schedule.makespan,
            best_schedule.makespan if best_schedule is not None else None,
        ):
            best_name, best_schedule = name, schedule
            if early_cutoff and lower is not None and schedule.makespan <= lower:
                cutoff = position + 1 < len(candidates)
    return entries, best_name, best_schedule, cutoff


def _race_task(
    task: tuple[str, dict],
) -> tuple[str, Fraction | None, list[int] | None, bool, str | None, float]:
    """Worker entry point: run one candidate, ship the assignment back.

    Module-level (picklable).  Unlike the batch worker's scalar records,
    the race returns the winning *assignment*, so the driver can rebuild
    the schedule without re-running the solver.  Returns ``(name,
    makespan, assignment, feasible, error, wall_time_s)``.
    """
    from repro.engine.registry import REGISTRY
    from repro.io import instance_from_dict

    name, payload = task
    spec = REGISTRY.get(name)
    if spec is None:
        # a runtime-registered plugin is absent from this worker's fresh
        # registry import (spawn start method): report, don't crash
        return (
            name,
            None,
            None,
            False,
            "algorithm not registered in the worker process (runtime "
            "plugins must be registered at import time to race on a "
            "pool)",
            0.0,
        )
    instance = instance_from_dict(payload)
    start = perf_counter()
    try:
        schedule = spec.execute(instance)
    except ReproError as exc:
        return name, None, None, False, str(exc), perf_counter() - start
    except Exception as exc:  # noqa: BLE001 — mirror the sequential
        # race: one crashing candidate must not kill the pool iteration
        return (
            name,
            None,
            None,
            False,
            f"{type(exc).__name__}: {exc}",
            perf_counter() - start,
        )
    elapsed = perf_counter() - start
    feasible = schedule.is_feasible()
    return (
        name,
        schedule.makespan if feasible else None,
        list(schedule.assignment),
        feasible,
        None,
        elapsed,
    )


def _race_pool(
    instance: SchedulingInstance,
    candidates: list[str],
    pool: multiprocessing.pool.Pool,
    lower: Fraction | None,
    early_cutoff: bool,
) -> tuple[list[PortfolioEntry], str | None, Schedule | None, bool]:
    from repro.io import instance_to_dict

    payload = instance_to_dict(instance)
    tasks = [(name, payload) for name in candidates]
    rank = {name: i for i, name in enumerate(candidates)}
    by_name: dict[str, PortfolioEntry] = {}
    assignments: dict[str, list[int]] = {}
    best_name: str | None = None
    best_makespan: Fraction | None = None
    cutoff = False
    results = pool.imap_unordered(_race_task, tasks, 1)
    for name, makespan, assignment, feasible, error, elapsed in results:
        by_name[name] = PortfolioEntry(
            algorithm=name,
            makespan=makespan,
            wall_time_s=elapsed,
            feasible=feasible,
            error=error,
        )
        if feasible and makespan is not None:
            assignments[name] = assignment
            # ties break towards the earlier candidate, matching the
            # sequential race (the completion order of imap_unordered
            # must not leak into the reported winner)
            if (
                best_makespan is None
                or makespan < best_makespan
                or (makespan == best_makespan and rank[name] < rank[best_name])
            ):
                best_name, best_makespan = name, makespan
            if early_cutoff and lower is not None and makespan <= lower:
                # any candidate at the lower bound is provably optimal;
                # under the cutoff the reported winner is the first to
                # prove it (racing semantics — results still received
                # before the break keep the candidate-order tie-break)
                cutoff = len(by_name) < len(candidates)
                break
    entries = [
        by_name.get(
            name, PortfolioEntry(name, None, 0.0, False, skipped=True)
        )
        for name in candidates
    ]
    best_schedule = (
        Schedule(instance, assignments[best_name])
        if best_name is not None
        else None
    )
    return entries, best_name, best_schedule, cutoff
