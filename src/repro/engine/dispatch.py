"""Capability matching, ranked ``auto`` selection, and explain mode.

Dispatch policy (lowest ``auto_rank`` among applicable methods wins,
reproducing the pre-engine first-match table exactly):

==============================  =============================================
condition                       method
==============================  =============================================
``Q``, unit jobs, ``K_{a,b}``   exact unary algorithm ([20]/[24]); also
(+ isolated vertices)           covers unit-job edgeless instances exactly
``Q``, unit jobs, ``m = 2``     exact Theorem 4 algorithm
``Q``, edgeless, identical      dual-approximation PTAS ([11], ``1 + 1/3``)
``Q``, ``m = 2``                Algorithm 5 on ``to_unrelated()``
                                (``1 + 1/10``, the Theorem 4 route)
``Q``, edgeless                 graph-blind LPT (feasible here; factor 2)
``Q``, otherwise                Algorithm 1 (``sqrt(sum p_j)``-approx, Thm 9)
``R``, ``m = 2``                Algorithm 5 FPTAS (``eps = 1/10``)
``R``, edgeless                 Lenstra–Shmoys–Tardos 2-approx ([18])
``R``, otherwise                color split (Theorem 24 forbids guarantees)
==============================  =============================================

Every method is also callable by name (``algorithm="sqrt_approx"``), and
:func:`explain_dispatch` reports, per registered algorithm, *why* it was
chosen or rejected (``repro solve --explain``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.registry import REGISTRY, AlgorithmRegistry, AlgorithmSpec
from repro.exceptions import InfeasibleInstanceError, InvalidInstanceError
from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
    UnrelatedInstance,
)
from repro.scheduling.schedule import Schedule

__all__ = [
    "DispatchEntry",
    "DispatchReport",
    "auto_choice",
    "available_algorithms",
    "explain_dispatch",
    "solve",
]


def available_algorithms(
    instance: SchedulingInstance | None = None,
    registry: AlgorithmRegistry | None = None,
) -> list[AlgorithmSpec]:
    """All registered algorithms, optionally filtered by applicability.

    Parameters
    ----------
    instance:
        When given, only specs whose preconditions hold for this
        instance are returned (``spec.applies(instance)``).
    registry:
        Registry to read (default: the global engine registry).

    Returns
    -------
    list of AlgorithmSpec
        Registry entries in registration order.
    """
    registry = REGISTRY if registry is None else registry
    specs = registry.specs()
    if instance is None:
        return specs
    return [s for s in specs if s.applies(instance)]


def _auto_eligible(spec: AlgorithmSpec, instance: SchedulingInstance) -> bool:
    """Whether ``spec`` participates in auto selection for ``instance``."""
    if spec.auto_rank is None or not spec.applies(instance):
        return False
    return spec.auto_when is None or spec.auto_when.check(instance)


def auto_choice(
    instance: SchedulingInstance,
    registry: AlgorithmRegistry | None = None,
) -> str:
    """The algorithm name ``solve(instance, "auto")`` would run.

    Ranked capability matching: among registered specs that apply to the
    instance *and* carry an ``auto_rank`` (plus any ``auto_when``
    selection constraint), the lowest rank wins.  Exposed so batch
    drivers (:mod:`repro.runtime`) and reports can record which
    registered method the dispatch policy resolved to without
    re-implementing the policy.

    Parameters
    ----------
    instance:
        The instance the dispatch policy inspects (machine environment,
        unit jobs, graph structure).
    registry:
        Registry to dispatch over (default: the global engine registry).

    Returns
    -------
    str
        A key of the registry.

    Raises
    ------
    repro.exceptions.InfeasibleInstanceError
        If the instance has conflict edges but only one machine (no
        feasible schedule can exist).
    repro.exceptions.InvalidInstanceError
        If the instance type is not registered.
    """
    registry = REGISTRY if registry is None else registry
    if not isinstance(instance, (UniformInstance, UnrelatedInstance)):
        raise InvalidInstanceError(
            f"unknown instance type {type(instance).__name__}"
        )
    best: AlgorithmSpec | None = None
    for spec in registry.values():
        if _auto_eligible(spec, instance) and (
            best is None or spec.auto_rank < best.auto_rank
        ):
            best = spec
    if best is not None:
        return best.name
    raise InfeasibleInstanceError(
        "instances with conflicts need at least two machines"
    )


@dataclass(frozen=True)
class DispatchEntry:
    """One algorithm's verdict inside a :class:`DispatchReport`."""

    name: str
    guarantee: str
    anchor: str
    applicable: bool
    auto_rank: int | None
    chosen: bool
    why: str

    def to_dict(self) -> dict:
        """JSON-safe form (the serving layer streams these)."""
        return {
            "name": self.name,
            "guarantee": self.guarantee,
            "anchor": self.anchor,
            "applicable": self.applicable,
            "auto_rank": self.auto_rank,
            "chosen": self.chosen,
            "why": self.why,
        }


@dataclass(frozen=True)
class DispatchReport:
    """Per-algorithm accept/reject reasons for one dispatch decision.

    ``chosen`` is the resolved algorithm name (``None`` when dispatch
    itself failed, with ``error`` saying why); ``entries`` cover every
    registered algorithm in registration order.
    """

    algorithm: str
    chosen: str | None
    error: str | None
    entries: tuple[DispatchEntry, ...]

    def why_chosen(self) -> str | None:
        """The chosen entry's reason string (``None`` if nothing chosen)."""
        for entry in self.entries:
            if entry.chosen:
                return entry.why
        return None

    def why_rejected(self) -> dict[str, str]:
        """``name -> reason`` for every non-chosen algorithm."""
        return {e.name: e.why for e in self.entries if not e.chosen}

    def table(self) -> str:
        """Aligned monospace rendering (what ``solve --explain`` prints)."""
        from repro.analysis.tables import format_table

        rows = [
            [
                ("->" if e.chosen else "") + e.name,
                "yes" if e.applicable else "no",
                "-" if e.auto_rank is None else e.auto_rank,
                e.why,
            ]
            for e in self.entries
        ]
        title = (
            f"dispatch: chose {self.chosen!r}"
            if self.chosen is not None
            else f"dispatch failed: {self.error}"
        )
        return format_table(
            ["algorithm", "applies", "rank", "why"], rows, title=title
        )

    def to_dict(self) -> dict:
        """JSON-safe form (the serving layer streams these)."""
        return {
            "algorithm": self.algorithm,
            "chosen": self.chosen,
            "error": self.error,
            "entries": [e.to_dict() for e in self.entries],
        }


def explain_dispatch(
    instance: SchedulingInstance,
    algorithm: str = "auto",
    registry: AlgorithmRegistry | None = None,
) -> DispatchReport:
    """Why each registered algorithm was (not) selected for ``instance``.

    With ``algorithm="auto"`` the report walks the ranked policy; with a
    named algorithm it reports that method's precondition check and
    marks everything else "not requested".  Never raises for dispatch
    failures — they land in :attr:`DispatchReport.error` so explain mode
    can describe infeasible instances too.
    """
    registry = REGISTRY if registry is None else registry
    chosen: str | None = None
    error: str | None = None
    if algorithm == "auto":
        try:
            chosen = auto_choice(instance, registry)
        except (InfeasibleInstanceError, InvalidInstanceError) as exc:
            error = str(exc)
    elif algorithm in registry:
        chosen = algorithm if registry[algorithm].applies(instance) else None
        if chosen is None:
            error = f"algorithm {algorithm!r} does not apply to this instance"
    else:
        error = f"unknown algorithm {algorithm!r}"

    entries: list[DispatchEntry] = []
    for spec in registry.values():
        applicable, reasons = spec.matches(instance)
        is_chosen = spec.name == chosen
        if is_chosen:
            if algorithm == "auto":
                why = (
                    f"selected: strongest applicable ranked method "
                    f"(rank {spec.auto_rank})"
                )
            else:
                why = "selected: explicitly requested"
        elif not applicable:
            why = "; ".join(reasons)
        elif algorithm != "auto":
            why = "applies, but a different algorithm was requested"
        elif spec.auto_rank is None:
            why = "applies, but is callable by name only (not in the auto policy)"
        elif spec.auto_when is not None and not spec.auto_when.check(instance):
            constraint = ", ".join(spec.auto_when.requirements())
            why = f"applies, but auto selection additionally needs: {constraint}"
        elif chosen is not None:
            why = (
                f"applies, but rank {spec.auto_rank} loses to "
                f"{chosen!r} (rank {registry[chosen].auto_rank})"
            )
        else:
            why = "applies, but dispatch failed before selection"
        entries.append(
            DispatchEntry(
                name=spec.name,
                guarantee=spec.guarantee,
                anchor=spec.anchor,
                applicable=applicable,
                auto_rank=spec.auto_rank,
                chosen=is_chosen,
                why=why,
            )
        )
    return DispatchReport(
        algorithm=algorithm, chosen=chosen, error=error, entries=tuple(entries)
    )


def solve(
    instance: SchedulingInstance,
    algorithm: str = "auto",
    registry: AlgorithmRegistry | None = None,
) -> Schedule:
    """Schedule ``instance`` with the requested (or auto-chosen) method.

    Parameters
    ----------
    instance:
        A :class:`~repro.scheduling.instance.UniformInstance` or
        :class:`~repro.scheduling.instance.UnrelatedInstance`.
    algorithm:
        ``"auto"`` (default) applies the ranked dispatch policy in the
        module docstring; any other value must be a registered name.
    registry:
        Registry to dispatch over (default: the global engine registry).

    Returns
    -------
    repro.scheduling.schedule.Schedule
        The produced schedule.  Graph-blind baselines may return an
        infeasible schedule on graphs with edges — check
        :meth:`~repro.scheduling.schedule.Schedule.is_feasible`.

    Raises
    ------
    repro.exceptions.InvalidInstanceError
        If ``algorithm`` is unknown, or its preconditions fail for this
        instance.
    repro.exceptions.InfeasibleInstanceError
        If no feasible schedule exists (propagated from dispatch or the
        exact methods).

    Examples
    --------
    >>> from repro import BipartiteGraph, UniformInstance, solve
    >>> graph = BipartiteGraph(4, [(0, 2), (1, 3)])
    >>> inst = UniformInstance(graph, p=[5, 3, 4, 2], speeds=[3, 2, 1])
    >>> schedule = solve(inst)
    >>> schedule.is_feasible()
    True
    """
    registry = REGISTRY if registry is None else registry
    name = auto_choice(instance, registry) if algorithm == "auto" else algorithm
    spec = registry.get(name)
    if spec is None:
        known = ", ".join(sorted(registry))
        raise InvalidInstanceError(f"unknown algorithm {name!r}; known: {known}")
    if not spec.applies(instance):
        raise InvalidInstanceError(
            f"algorithm {name!r} does not apply to this instance "
            f"({spec.guarantee}; {spec.anchor})"
        )
    return spec.execute(instance)
