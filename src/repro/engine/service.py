"""The persistent serving layer: ``repro serve``.

A long-lived process that accepts JSONL requests — one JSON object per
line, over stdin/stdout or a TCP socket — and answers them from the
engine.  Instances are canonicalized and content-hashed
(:func:`repro.runtime.cache.task_key`), so a repeated identical query is
answered from the cache without touching a solver; with a
:class:`~repro.runtime.cache.ShardedResultCache` directory the cache
survives restarts and loads lazily per key prefix, keeping startup O(1)
regardless of history size.

Request protocol (``repro/serve/v1``), one JSON object per line::

    {"op": "solve", "id": 7, "instance": {...}, "algorithm": "auto"}
    {"op": "solve", "id": 8, "instance": {...}, "explain": true}
    {"op": "solve", "id": 9, "instance": {...}, "portfolio": 3}
    {"op": "ping"}
    {"op": "stats"}

``instance`` is the canonical JSON form of
:func:`repro.io.instance_to_dict`.  Responses echo ``id`` and carry
``ok``, the task ``key``, the resolved ``chosen`` algorithm, the exact
``makespan`` (``"num/den"``), the ``assignment``, and ``cached``.
Errors never kill the loop: they come back as ``ok=false`` responses.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Iterable, TextIO

from repro.engine.dispatch import auto_choice, explain_dispatch, solve
from repro.engine.portfolio import portfolio_solve
from repro.exceptions import CacheCollisionError, ReproError
from repro.io import frac_str, instance_from_dict
from repro.runtime.cache import ResultCache, ShardedResultCache, task_key

__all__ = [
    "SERVE_FORMAT",
    "ServiceStats",
    "EngineService",
    "serve_tcp",
]

SERVE_FORMAT = "repro/serve/v1"


@dataclass
class ServiceStats:
    """Aggregate counters over one service lifetime."""

    requests: int = 0
    solved: int = 0
    cached: int = 0
    errors: int = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "requests": self.requests,
            "solved": self.solved,
            "cached": self.cached,
            "errors": self.errors,
        }


class EngineService:
    """Stateful request handler behind ``repro serve``.

    Parameters
    ----------
    cache:
        ``None`` (in-memory only), a ready cache object
        (:class:`ResultCache` / :class:`ShardedResultCache` or anything
        with their ``in``/``record``/``put`` protocol), or a path — a
        directory becomes a sharded cache, a file a flat one.
    algorithm:
        Default algorithm for requests without their own.

    Notes
    -----
    Serve-layer records carry the ``assignment`` (a serving API must
    return the schedule, not just its makespan), so the service keeps
    its own cache namespace — point it at a *serve* cache directory,
    not at a batch results cache.  Only successful solves are cached;
    errors are re-evaluated per request.
    """

    def __init__(
        self,
        cache: Any | str | Path | None = None,
        algorithm: str = "auto",
    ) -> None:
        if cache is None:
            self.cache: Any = ResultCache(None)
        elif isinstance(cache, (str, Path)):
            path = Path(cache)
            if path.is_file():
                self.cache = ResultCache(path)
            else:
                self.cache = ShardedResultCache(path)
        else:
            self.cache = cache
        self.algorithm = algorithm
        self.stats = ServiceStats()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    def handle_line(self, line: str) -> str:
        """One JSONL request line in, one JSONL response line out."""
        try:
            request = json.loads(line)
        except json.JSONDecodeError as exc:
            self.stats.requests += 1
            self.stats.errors += 1
            return json.dumps(
                self._error_response(None, f"malformed request line: {exc}")
            )
        if not isinstance(request, dict):
            self.stats.requests += 1
            self.stats.errors += 1
            return json.dumps(
                self._error_response(None, "request must be a JSON object")
            )
        return json.dumps(self.handle_request(request))

    def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one decoded request to its ``op`` handler."""
        self.stats.requests += 1
        op = request.get("op", "solve")
        request_id = request.get("id")
        if op == "ping":
            return {"format": SERVE_FORMAT, "id": request_id, "op": "ping", "ok": True}
        if op == "stats":
            return {
                "format": SERVE_FORMAT,
                "id": request_id,
                "op": "stats",
                "ok": True,
                "stats": self.stats.to_dict(),
            }
        if op != "solve":
            self.stats.errors += 1
            return self._error_response(request_id, f"unknown op {op!r}")
        try:
            return self._handle_solve(request)
        except ReproError as exc:
            self.stats.errors += 1
            return self._error_response(request_id, str(exc))
        except Exception as exc:  # noqa: BLE001 — a persistent server
            # must survive *any* bad request (malformed payloads raise
            # KeyError/ValueError, not ReproError); the typed message
            # keeps the defect visible to the client and to stats
            self.stats.errors += 1
            return self._error_response(
                request_id, f"{type(exc).__name__}: {exc}"
            )

    def _error_response(
        self, request_id: Any, message: str
    ) -> dict[str, Any]:
        return {
            "format": SERVE_FORMAT,
            "id": request_id,
            "ok": False,
            "error": message,
        }

    def _handle_solve(self, request: dict[str, Any]) -> dict[str, Any]:
        request_id = request.get("id")
        payload = request.get("instance")
        if not isinstance(payload, dict):
            self.stats.errors += 1
            return self._error_response(
                request_id, "solve request carries no 'instance' payload"
            )
        algorithm = request.get("algorithm") or self.algorithm
        portfolio_k = request.get("portfolio")
        if portfolio_k is not None:
            portfolio_k = int(portfolio_k)
            if portfolio_k < 1:
                raise ReproError(
                    f"portfolio size must be >= 1, got {portfolio_k}"
                )
            if request.get("algorithm") not in (None, "auto"):
                # mirror the CLI: racing a fixed candidate list cannot
                # honour a named algorithm — refuse, don't drop it
                raise ReproError(
                    "a portfolio request races the strongest eligible "
                    "methods and cannot honour a named 'algorithm'; "
                    "send one of the two"
                )
        cache_algorithm = (
            f"portfolio:{portfolio_k}" if portfolio_k is not None else algorithm
        )
        # the "serve/" marker namespaces serve keys apart from batch
        # task keys, so pointing --cache-dir at a batch cache can never
        # be answered with (or collide against) batch-shaped records
        key = task_key(payload, f"serve/{cache_algorithm}")

        if key in self.cache:
            record = dict(self.cache.record(key))
            if record.get("kind") != "serve_result":
                # foreign record under a serve key: a poisoned cache —
                # refuse before wasting a solve whose put() could only
                # collide with the bad record anyway
                raise CacheCollisionError(
                    f"cache key {key[:16]}... holds a non-serve record "
                    f"(kind={record.get('kind')!r}); the serve cache "
                    "directory is poisoned or shared with another tool"
                )
            self.stats.cached += 1
            record.update(id=request_id, cached=True, wall_time_s=0.0)
            if request.get("explain"):
                # explain derives from the instance alone (no solve),
                # so cache hits still answer it
                record["explain"] = explain_dispatch(
                    instance_from_dict(payload), algorithm
                ).to_dict()
            return record

        instance = instance_from_dict(payload)
        start = perf_counter()
        if portfolio_k is not None:
            result = portfolio_solve(instance, k=portfolio_k)
            chosen, schedule = result.chosen, result.schedule
        else:
            chosen = (
                auto_choice(instance) if algorithm == "auto" else algorithm
            )
            schedule = solve(instance, algorithm=chosen)
        wall = perf_counter() - start
        self.stats.solved += 1

        record: dict[str, Any] = {
            "format": SERVE_FORMAT,
            "kind": "serve_result",
            "id": request_id,
            "ok": True,
            "key": key,
            "algorithm": cache_algorithm,
            "chosen": chosen,
            "n": instance.n,
            "m": instance.m,
            "edges": instance.graph.edge_count,
            "makespan": frac_str(schedule.makespan),
            "makespan_float": float(schedule.makespan),
            "feasible": schedule.is_feasible(),
            "assignment": list(schedule.assignment),
            "cached": False,
            "wall_time_s": wall,
            "error": None,
        }
        self.cache.put(key, dict(record, id=None, wall_time_s=0.0))
        if request.get("explain"):
            record["explain"] = explain_dispatch(instance, algorithm).to_dict()
        return record

    # ------------------------------------------------------------------ #
    # serving loops
    # ------------------------------------------------------------------ #

    def serve_stream(
        self, source: Iterable[str], sink: TextIO
    ) -> ServiceStats:
        """Answer every request line from ``source`` onto ``sink``.

        The stdin/stdout serving mode: blank lines are skipped, each
        response is flushed immediately so a piped client sees complete
        lines, and the final stats are returned when the stream ends.
        """
        for line in source:
            if not line.strip():
                continue
            sink.write(self.handle_line(line) + "\n")
            sink.flush()
        return self.stats


def serve_tcp(
    service: EngineService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: int | None = None,
    ready: "Any | None" = None,
) -> int:
    """Serve JSONL requests over a TCP socket (one line per request).

    Accepts connections sequentially; within each connection, every
    received line is answered in order until the client closes.  With
    ``max_requests`` the loop exits after that many requests (one-shot
    smoke tests); ``port=0`` binds an ephemeral port.  ``ready``, when
    given, is a callable invoked with the bound ``(host, port)`` once
    the socket is listening (tests use it to rendezvous).  Returns the
    number of requests served.
    """
    import socket

    served = 0
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((host, port))
        server.listen(1)
        if ready is not None:
            ready(server.getsockname())
        while max_requests is None or served < max_requests:
            conn, _ = server.accept()
            with conn, conn.makefile("rw", encoding="utf-8") as stream:
                for line in stream:
                    if not line.strip():
                        continue
                    stream.write(service.handle_line(line) + "\n")
                    stream.flush()
                    served += 1
                    if max_requests is not None and served >= max_requests:
                        break
    return served
