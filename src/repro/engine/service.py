"""The persistent serving layer: ``repro serve``.

A long-lived process that accepts JSONL requests — one JSON object per
line, over stdin/stdout or a TCP socket — and answers them from the
engine.  Instances are canonicalized and content-hashed
(:func:`repro.runtime.cache.task_key`), so a repeated identical query is
answered from the cache without touching a solver; with a
:class:`~repro.runtime.cache.ShardedResultCache` directory the cache
survives restarts and loads lazily per key prefix, keeping startup O(1)
regardless of history size.

Request protocol (``repro/serve/v1``), one JSON object per line::

    {"op": "solve", "id": 7, "instance": {...}, "algorithm": "auto"}
    {"op": "solve", "id": 8, "instance": {...}, "explain": true}
    {"op": "solve", "id": 9, "instance": {...}, "portfolio": 3}
    {"op": "ping"}
    {"op": "stats"}

``instance`` is the canonical JSON form of
:func:`repro.io.instance_to_dict`.  Responses echo ``id`` and carry
``ok``, the task ``key``, the resolved ``chosen`` algorithm, the exact
``makespan`` (``"num/den"``), the ``assignment``, and ``cached``.
Errors never kill the loop: they come back as ``ok=false`` responses.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Iterable, TextIO

from repro.engine.dispatch import auto_choice, explain_dispatch, solve
from repro.engine.portfolio import portfolio_solve
from repro.exceptions import CacheCollisionError, ReproError
from repro.io import frac_str, instance_from_dict
from repro.runtime.cache import ResultCache, ShardedResultCache, task_key

__all__ = [
    "SERVE_FORMAT",
    "LatencyReservoir",
    "ServiceStats",
    "EngineService",
    "parse_solve_request",
    "build_solve_record",
    "serve_tcp",
]

SERVE_FORMAT = "repro/serve/v1"


class LatencyReservoir:
    """A ring buffer of recent request latencies with percentile snapshots.

    Keeps the last ``window`` samples (seconds) for percentiles — so
    p50/p95/p99 track *recent* behaviour, not the whole history — plus
    lifetime count/total/max.  Snapshots sort the window
    (O(window log window)), which is negligible at the default size.
    """

    def __init__(self, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"latency window must be >= 1, got {window}")
        self.window = window
        self._samples: deque[float] = deque(maxlen=window)
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one request latency (negative inputs clamp to 0)."""
        seconds = max(0.0, float(seconds))
        self._samples.append(seconds)
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def percentile(self, q: float) -> float | None:
        """Nearest-rank ``q``-th percentile (0..100) of the window."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        rank = math.ceil(q / 100.0 * len(ordered)) - 1
        return ordered[max(0, min(len(ordered) - 1, rank))]

    def snapshot(self) -> dict[str, Any]:
        """The JSON-ready metrics block served under ``stats.latency``."""

        def ms(value: float | None) -> float | None:
            return None if value is None else round(value * 1000.0, 3)

        return {
            "count": self.count,
            "window": len(self._samples),
            "p50_ms": ms(self.percentile(50)),
            "p95_ms": ms(self.percentile(95)),
            "p99_ms": ms(self.percentile(99)),
            "mean_ms": ms(self.total_s / self.count) if self.count else None,
            "max_ms": ms(self.max_s) if self.count else None,
        }


@dataclass
class ServiceStats:
    """Aggregate counters and latency surface over one service lifetime.

    ``coalesced``/``rejected``/``connections`` are serving-tier counters
    (the async TCP tier drives them; they stay 0 on the stdin stream
    path).  ``latency`` is a :class:`LatencyReservoir` of per-request
    handling times; ``qps`` is requests over the service's uptime.
    """

    requests: int = 0
    solved: int = 0
    cached: int = 0
    errors: int = 0
    coalesced: int = 0
    rejected: int = 0
    connections: int = 0
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    started: float = field(default_factory=perf_counter)

    def observe_latency(self, seconds: float) -> None:
        """Record one request's handling latency."""
        self.latency.observe(seconds)

    def uptime_s(self) -> float:
        """Seconds since the stats object was created (never zero)."""
        return max(perf_counter() - self.started, 1e-9)

    def qps(self) -> float:
        """Lifetime requests per second."""
        return self.requests / self.uptime_s()

    def to_dict(self) -> dict[str, Any]:
        from repro.fastpath import scaled_speeds_cache_stats

        return {
            "requests": self.requests,
            "solved": self.solved,
            "cached": self.cached,
            "errors": self.errors,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "connections": self.connections,
            "uptime_s": round(self.uptime_s(), 3),
            "qps": round(self.qps(), 3),
            "latency": self.latency.snapshot(),
            # fast-path health for long-lived services: the normalization
            # cache is bounded, so hit rate (not growth) is the signal
            "fastpath": {"scaled_speeds_cache": scaled_speeds_cache_stats()},
        }


def parse_solve_request(
    request: dict[str, Any], default_algorithm: str = "auto"
) -> tuple[dict[str, Any], str, int | None, str]:
    """Validate one solve request into ``(payload, algorithm, k, cache_algorithm)``.

    Shared by the sync and async services so both reject malformed
    requests identically.  Raises :exc:`~repro.exceptions.ReproError`
    for protocol-level problems; a non-numeric ``portfolio`` raises the
    underlying ``ValueError``/``TypeError`` (callers shape it into a
    typed error response).
    """
    payload = request.get("instance")
    if not isinstance(payload, dict):
        raise ReproError("solve request carries no 'instance' payload")
    algorithm = request.get("algorithm") or default_algorithm
    if not isinstance(algorithm, str):
        raise ReproError(
            f"'algorithm' must be a string, got {type(algorithm).__name__}"
        )
    portfolio_k = request.get("portfolio")
    if portfolio_k is not None:
        portfolio_k = int(portfolio_k)
        if portfolio_k < 1:
            raise ReproError(
                f"portfolio size must be >= 1, got {portfolio_k}"
            )
        if request.get("algorithm") not in (None, "auto"):
            # mirror the CLI: racing a fixed candidate list cannot
            # honour a named algorithm — refuse, don't drop it
            raise ReproError(
                "a portfolio request races the strongest eligible "
                "methods and cannot honour a named 'algorithm'; "
                "send one of the two"
            )
    cache_algorithm = (
        f"portfolio:{portfolio_k}" if portfolio_k is not None else algorithm
    )
    return payload, algorithm, portfolio_k, cache_algorithm


def build_solve_record(
    payload: dict[str, Any],
    algorithm: str,
    portfolio_k: int | None,
    key: str,
) -> dict[str, Any]:
    """Solve one validated payload and build its cacheable serve record.

    Module-level (and with the response ``id`` left ``None``) so worker
    processes can run it through pickle — the async tier hands solves to
    :class:`~repro.runtime.batch.BatchRunner`'s pool via
    :func:`repro.engine.aserve._pool_solve`.  Raises on solver-level
    failure (unknown algorithm, infeasible instance, ...); callers shape
    errors into responses.
    """
    instance = instance_from_dict(payload)
    start = perf_counter()
    if portfolio_k is not None:
        result = portfolio_solve(instance, k=portfolio_k)
        chosen, schedule = result.chosen, result.schedule
    else:
        chosen = auto_choice(instance) if algorithm == "auto" else algorithm
        schedule = solve(instance, algorithm=chosen)
    wall = perf_counter() - start
    cache_algorithm = (
        f"portfolio:{portfolio_k}" if portfolio_k is not None else algorithm
    )
    return {
        "format": SERVE_FORMAT,
        "kind": "serve_result",
        "id": None,
        "ok": True,
        "key": key,
        "algorithm": cache_algorithm,
        "chosen": chosen,
        "n": instance.n,
        "m": instance.m,
        "edges": instance.graph.edge_count,
        "makespan": frac_str(schedule.makespan),
        "makespan_float": float(schedule.makespan),
        "feasible": schedule.is_feasible(),
        "assignment": list(schedule.assignment),
        "cached": False,
        "wall_time_s": wall,
        "error": None,
    }


class EngineService:
    """Stateful request handler behind ``repro serve``.

    Parameters
    ----------
    cache:
        ``None`` (in-memory only), a ready cache object
        (:class:`ResultCache` / :class:`ShardedResultCache` or anything
        with their ``in``/``record``/``put`` protocol), or a path — a
        directory becomes a sharded cache, a file a flat one.
    algorithm:
        Default algorithm for requests without their own.

    Notes
    -----
    Serve-layer records carry the ``assignment`` (a serving API must
    return the schedule, not just its makespan), so the service keeps
    its own cache namespace — point it at a *serve* cache directory,
    not at a batch results cache.  Only successful solves are cached;
    errors are re-evaluated per request.
    """

    def __init__(
        self,
        cache: Any | str | Path | None = None,
        algorithm: str = "auto",
    ) -> None:
        if cache is None:
            self.cache: Any = ResultCache(None)
        elif isinstance(cache, (str, Path)):
            path = Path(cache)
            if path.is_file():
                self.cache = ResultCache(path)
            else:
                self.cache = ShardedResultCache(path)
        else:
            self.cache = cache
        self.algorithm = algorithm
        self.stats = ServiceStats()

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    def handle_line(self, line: str) -> str:
        """One JSONL request line in, exactly one JSONL response line out.

        The protocol boundary: whatever junk arrives — non-JSON bytes,
        deeply nested JSON (``RecursionError`` from the parser), huge
        integer literals (``ValueError`` from the int-conversion limit),
        wrong-typed fields — the reply is a single parseable JSON line
        with a boolean ``ok``, and every call counts exactly one
        request.  The fuzz suite pins this down.
        """
        try:
            request = json.loads(line)
        except Exception as exc:  # noqa: BLE001 — JSONDecodeError is only
            # the common case; see the docstring for the exotic ones
            self.stats.requests += 1
            self.stats.errors += 1
            return json.dumps(
                self._error_response(None, f"malformed request line: {exc}")
            )
        if not isinstance(request, dict):
            self.stats.requests += 1
            self.stats.errors += 1
            return json.dumps(
                self._error_response(None, "request must be a JSON object")
            )
        try:
            return json.dumps(self.handle_request(request))
        except Exception as exc:  # noqa: BLE001 — a response that cannot
            # be serialised must still come back as one parseable line
            self.stats.errors += 1
            return json.dumps(
                self._error_response(
                    None, f"unserialisable response: {type(exc).__name__}"
                )
            )

    def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one decoded request, timing it into the stats surface."""
        self.stats.requests += 1
        started = perf_counter()
        try:
            return self._handle_op(request)
        finally:
            self.stats.observe_latency(perf_counter() - started)

    def _handle_op(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op", "solve")
        request_id = request.get("id")
        if op == "ping":
            return {"format": SERVE_FORMAT, "id": request_id, "op": "ping", "ok": True}
        if op == "stats":
            return {
                "format": SERVE_FORMAT,
                "id": request_id,
                "op": "stats",
                "ok": True,
                "stats": self.stats.to_dict(),
            }
        if op != "solve":
            self.stats.errors += 1
            return self._error_response(request_id, f"unknown op {op!r}")
        try:
            return self._handle_solve(request)
        except ReproError as exc:
            self.stats.errors += 1
            return self._error_response(request_id, str(exc))
        except Exception as exc:  # noqa: BLE001 — a persistent server
            # must survive *any* bad request (malformed payloads raise
            # KeyError/ValueError, not ReproError); the typed message
            # keeps the defect visible to the client and to stats
            self.stats.errors += 1
            return self._error_response(
                request_id, f"{type(exc).__name__}: {exc}"
            )

    def _error_response(
        self, request_id: Any, message: str
    ) -> dict[str, Any]:
        return {
            "format": SERVE_FORMAT,
            "id": request_id,
            "ok": False,
            "error": message,
        }

    def _handle_solve(self, request: dict[str, Any]) -> dict[str, Any]:
        request_id = request.get("id")
        payload, algorithm, portfolio_k, cache_algorithm = parse_solve_request(
            request, self.algorithm
        )
        # the "serve/" marker namespaces serve keys apart from batch
        # task keys, so pointing --cache-dir at a batch cache can never
        # be answered with (or collide against) batch-shaped records
        key = task_key(payload, f"serve/{cache_algorithm}")

        if key in self.cache:
            record = dict(self.cache.record(key))
            if record.get("kind") != "serve_result":
                # foreign record under a serve key: a poisoned cache —
                # refuse before wasting a solve whose put() could only
                # collide with the bad record anyway
                raise CacheCollisionError(
                    f"cache key {key[:16]}... holds a non-serve record "
                    f"(kind={record.get('kind')!r}); the serve cache "
                    "directory is poisoned or shared with another tool"
                )
            self.stats.cached += 1
            record.update(id=request_id, cached=True, wall_time_s=0.0)
            if request.get("explain"):
                # explain derives from the instance alone (no solve),
                # so cache hits still answer it
                record["explain"] = explain_dispatch(
                    instance_from_dict(payload), algorithm
                ).to_dict()
            return record

        record = build_solve_record(payload, algorithm, portfolio_k, key)
        self.stats.solved += 1
        self.cache.put(key, dict(record, id=None, wall_time_s=0.0))
        record["id"] = request_id
        if request.get("explain"):
            record["explain"] = explain_dispatch(
                instance_from_dict(payload), algorithm
            ).to_dict()
        return record

    # ------------------------------------------------------------------ #
    # serving loops
    # ------------------------------------------------------------------ #

    def serve_stream(
        self, source: Iterable[str], sink: TextIO
    ) -> ServiceStats:
        """Answer every request line from ``source`` onto ``sink``.

        The stdin/stdout serving mode: blank lines are skipped, each
        response is flushed immediately so a piped client sees complete
        lines, and the final stats are returned when the stream ends.
        """
        for line in source:
            if not line.strip():
                continue
            sink.write(self.handle_line(line) + "\n")
            sink.flush()
        return self.stats


def serve_tcp(
    service: EngineService,
    host: str = "127.0.0.1",
    port: int = 0,
    max_requests: int | None = None,
    ready: "Any | None" = None,
    backlog: int = 128,
) -> int:
    """Serve JSONL requests over a TCP socket, one connection at a time.

    The *sequential* fallback behind ``repro serve --port --sync``:
    connections are accepted strictly one after another, and within each
    connection every received line is answered in order until the client
    closes — only then is the next queued client served.  The raised
    ``backlog`` (was 1) keeps overlapping clients queued in the kernel
    instead of dropping their connects, so each of them *is* eventually
    answered; the asyncio tier (:mod:`repro.engine.aserve`, the default
    with ``--port``) is what serves them concurrently.

    With ``max_requests`` the loop exits after that many requests
    (one-shot smoke tests); ``port=0`` binds an ephemeral port.
    ``ready``, when given, is a callable invoked with the bound
    ``(host, port)`` once the socket is listening (tests use it to
    rendezvous).  Returns the number of requests served.
    """
    import socket

    served = 0
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as server:
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((host, port))
        server.listen(backlog)
        if ready is not None:
            ready(server.getsockname())
        while max_requests is None or served < max_requests:
            conn, _ = server.accept()
            with conn, conn.makefile("rw", encoding="utf-8") as stream:
                for line in stream:
                    if not line.strip():
                        continue
                    stream.write(service.handle_line(line) + "\n")
                    stream.flush()
                    served += 1
                    if max_requests is not None and served >= max_requests:
                        break
    return served
