"""The concurrent asyncio serving tier behind ``repro serve`` (TCP default).

:mod:`repro.engine.service` keeps the protocol, the stdin stream mode,
and the sequential ``--sync`` TCP fallback; this module multiplexes many
TCP connections on one event loop and never blocks that loop on a
solver:

* **dispatch** — solves run off-loop: on an in-process thread pool by
  default (``workers=1``), or on
  :class:`~repro.runtime.batch.BatchRunner`'s persistent multiprocessing
  pool (``workers > 1``), bridged back into the loop via
  ``apply_async`` callbacks.  The loop itself only parses, hashes, and
  routes, so a slow ``certified_optimal``-scale solve on one connection
  never stalls the others.
* **coalescing** — identical in-flight requests (same
  :func:`~repro.runtime.cache.task_key` content hash, which already
  namespaces by algorithm/portfolio) share one solve: the first request
  becomes the *leader*, followers await its future, every follower is
  counted in ``stats.coalesced``, and all of them receive the full
  response (makespan *and* assignment).
* **backpressure** — at most ``max_inflight`` concurrent solves plus
  ``max_queue`` admitted waiters.  Beyond that, requests needing a
  *fresh* solve are rejected immediately with ``ok=false,
  error="overloaded"`` (cache hits, coalesced followers, and control
  ops are still answered), so overload degrades into fast rejections
  instead of unbounded queue growth.
* **metrics** — the shared :class:`~repro.engine.service.ServiceStats`
  surface: qps, p50/p95/p99 latency from a ring-buffer reservoir, cache
  hit / coalesce / rejection counters — served by the ``stats`` op and
  an optional periodic log line (``repro serve --stats-interval``).

Responses carry ``format: "repro/serve/v2"``, a superset of v1 adding
``coalesced`` (and a ``server`` gauge block on ``stats``).  Cache
records stay v1-shaped, so a ``--cache-dir`` directory can be shared
freely between the sync and async tiers and across restarts.
"""

from __future__ import annotations

import asyncio
import json
import sys
from time import perf_counter
from typing import Any, Callable, TextIO

from repro.engine.dispatch import explain_dispatch
from repro.engine.service import (
    EngineService,
    build_solve_record,
    parse_solve_request,
)
from repro.exceptions import CacheCollisionError, ReproError
from repro.io import instance_from_dict
from repro.runtime.cache import task_key

__all__ = [
    "SERVE_FORMAT_V2",
    "AsyncEngineService",
    "serve_async",
]

SERVE_FORMAT_V2 = "repro/serve/v2"

#: per-line size cap for the TCP stream reader (instances are a few KB;
#: 4 MiB leaves two orders of magnitude of headroom without letting one
#: client buffer unbounded garbage)
LINE_LIMIT = 1 << 22


def _pool_solve(
    payload: dict[str, Any],
    algorithm: str,
    portfolio_k: int | None,
    key: str,
) -> dict[str, Any]:
    """Worker entry point: one solve, never raises (module-level, picklable).

    Failures come back as an ``ok=false`` record shaped like the sync
    service's error responses (``ReproError`` keeps its bare message,
    anything else is prefixed with its type), so the event loop treats
    worker-side defects as data instead of dying on them.
    """
    try:
        return build_solve_record(payload, algorithm, portfolio_k, key)
    except ReproError as exc:
        return {"ok": False, "kind": "serve_error", "key": key, "error": str(exc)}
    except Exception as exc:  # noqa: BLE001 — worker must answer, not crash
        return {
            "ok": False,
            "kind": "serve_error",
            "key": key,
            "error": f"{type(exc).__name__}: {exc}",
        }


class AsyncEngineService:
    """Asyncio request handler: coalescing, admission control, metrics.

    Parameters
    ----------
    cache:
        As :class:`~repro.engine.service.EngineService` — ``None``,
        a ready cache object, or a path (directory → sharded cache).
    algorithm:
        Default algorithm for requests without their own.
    workers:
        ``1`` (default) solves on an in-process thread pool — on one
        core the GIL serialises the compute but the event loop stays
        responsive; ``> 1`` hands solves to a persistent
        :class:`~repro.runtime.batch.BatchRunner` multiprocessing pool
        for real parallelism (worker processes see the built-in
        registry only, not runtime-registered plugins).
    max_inflight:
        Concurrent fresh solves admitted to the pool.
    max_queue:
        Admitted solves allowed to wait for a pool slot beyond
        ``max_inflight``; past that, fresh solves are rejected with
        ``error="overloaded"``.

    Notes
    -----
    All coroutine methods must run on a single event loop; the
    in-flight map and admission counters are loop-confined (no locks).
    Cache reads/writes touch disk inline — shard files are small
    JSONL appends, kept off the executor deliberately so cache-hit
    responses never queue behind solves.
    """

    def __init__(
        self,
        cache: Any | None = None,
        algorithm: str = "auto",
        workers: int = 1,
        max_inflight: int = 8,
        max_queue: int = 64,
    ) -> None:
        if workers < 1:
            raise ReproError(f"workers must be >= 1, got {workers}")
        if max_inflight < 1:
            raise ReproError(f"max_inflight must be >= 1, got {max_inflight}")
        if max_queue < 0:
            raise ReproError(f"max_queue must be >= 0, got {max_queue}")
        # reuse the sync service for cache resolution, stats, and error
        # shaping — one implementation of the protocol invariants
        self._sync = EngineService(cache=cache, algorithm=algorithm)
        self.algorithm = algorithm
        self.cache = self._sync.cache
        self.stats = self._sync.stats
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.workers = workers
        self._runner = None
        self._executor = None
        if workers > 1:
            from repro.runtime.batch import BatchRunner

            self._runner = BatchRunner(workers=workers)
        else:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=min(max_inflight, 32),
                thread_name_prefix="repro-serve",
            )
        self._inflight: dict[str, asyncio.Future] = {}
        self._running = 0
        self._queued = 0
        self._gate = asyncio.Semaphore(max_inflight)

    def close(self) -> None:
        """Tear down the worker pool/executor (idempotent)."""
        if self._runner is not None:
            self._runner.close()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #

    async def handle_line(self, line: str) -> str:
        """One JSONL request line in, exactly one JSONL response line out.

        The same protocol-boundary guarantees as the sync
        :meth:`~repro.engine.service.EngineService.handle_line`: any
        junk input yields a single parseable JSON reply with a boolean
        ``ok`` and counts exactly one request.
        """
        try:
            request = json.loads(line)
        except Exception as exc:  # noqa: BLE001 — see the sync twin
            self.stats.requests += 1
            self.stats.errors += 1
            return json.dumps(
                self._error(None, f"malformed request line: {exc}")
            )
        if not isinstance(request, dict):
            self.stats.requests += 1
            self.stats.errors += 1
            return json.dumps(
                self._error(None, "request must be a JSON object")
            )
        try:
            return json.dumps(await self.handle_request(request))
        except Exception as exc:  # noqa: BLE001
            self.stats.errors += 1
            return json.dumps(
                self._error(None, f"unserialisable response: {type(exc).__name__}")
            )

    async def handle_request(self, request: dict[str, Any]) -> dict[str, Any]:
        """Dispatch one decoded request, timing it into the stats surface."""
        self.stats.requests += 1
        started = perf_counter()
        try:
            return await self._handle_op(request)
        except ReproError as exc:
            self.stats.errors += 1
            return self._error(request.get("id"), str(exc))
        except Exception as exc:  # noqa: BLE001 — the loop must survive
            # any bad request; the typed message keeps defects visible
            self.stats.errors += 1
            return self._error(
                request.get("id"), f"{type(exc).__name__}: {exc}"
            )
        finally:
            self.stats.observe_latency(perf_counter() - started)

    async def _handle_op(self, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op", "solve")
        request_id = request.get("id")
        if op == "ping":
            return {
                "format": SERVE_FORMAT_V2,
                "id": request_id,
                "op": "ping",
                "ok": True,
            }
        if op == "stats":
            return {
                "format": SERVE_FORMAT_V2,
                "id": request_id,
                "op": "stats",
                "ok": True,
                "stats": self.stats.to_dict(),
                "server": self.gauges(),
            }
        if op != "solve":
            self.stats.errors += 1
            return self._error(request_id, f"unknown op {op!r}")
        return await self._handle_solve(request)

    def gauges(self) -> dict[str, Any]:
        """Live serving gauges (momentary, unlike the stats counters)."""
        return {
            "inflight": self._running,
            "queued": self._queued,
            "coalescing_keys": len(self._inflight),
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "workers": self.workers,
        }

    def _error(self, request_id: Any, message: str) -> dict[str, Any]:
        response = self._sync._error_response(request_id, message)
        response["format"] = SERVE_FORMAT_V2
        return response

    async def _handle_solve(self, request: dict[str, Any]) -> dict[str, Any]:
        request_id = request.get("id")
        payload, algorithm, portfolio_k, cache_algorithm = parse_solve_request(
            request, self.algorithm
        )
        key = task_key(payload, f"serve/{cache_algorithm}")

        if key in self.cache:
            record = dict(self.cache.record(key))
            if record.get("kind") != "serve_result":
                raise CacheCollisionError(
                    f"cache key {key[:16]}... holds a non-serve record "
                    f"(kind={record.get('kind')!r}); the serve cache "
                    "directory is poisoned or shared with another tool"
                )
            self.stats.cached += 1
            record.update(cached=True, wall_time_s=0.0)
            return self._shape(record, request, request_id, coalesced=False)

        leader_future = self._inflight.get(key)
        if leader_future is not None:
            # coalesce: ride the in-flight solve instead of queueing a
            # duplicate; followers bypass admission control (they cost
            # no solver capacity) and each one is counted
            self.stats.coalesced += 1
            record = await asyncio.shield(leader_future)
            return self._shape(record, request, request_id, coalesced=True)

        if self._running + self._queued >= self.max_inflight + self.max_queue:
            self.stats.rejected += 1
            response = self._error(request_id, "overloaded")
            response["detail"] = (
                f"{self._running} solves in flight and {self._queued} queued "
                f"(max_inflight={self.max_inflight}, max_queue={self.max_queue}); "
                "retry later"
            )
            return response

        loop = asyncio.get_running_loop()
        leader_future = loop.create_future()
        self._inflight[key] = leader_future
        self._queued += 1
        try:
            async with self._gate:
                self._queued -= 1
                self._running += 1
                try:
                    record = await self._dispatch(payload, algorithm, portfolio_k, key)
                finally:
                    self._running -= 1
        except BaseException as exc:
            if not leader_future.done():
                leader_future.set_exception(exc)
                # consumed by any follower; nobody awaiting is also fine
                leader_future.exception()
            raise
        finally:
            self._inflight.pop(key, None)

        if record.get("ok"):
            self.stats.solved += 1
            self.cache.put(key, dict(record, id=None, wall_time_s=0.0))
        else:
            self.stats.errors += 1
        if not leader_future.done():
            leader_future.set_result(record)
        return self._shape(record, request, request_id, coalesced=False)

    async def _dispatch(
        self,
        payload: dict[str, Any],
        algorithm: str,
        portfolio_k: int | None,
        key: str,
    ) -> dict[str, Any]:
        """Run one solve off-loop and await its record."""
        loop = asyncio.get_running_loop()
        pool = self._runner.worker_pool() if self._runner is not None else None
        if pool is None:
            return await loop.run_in_executor(
                self._executor, _pool_solve, payload, algorithm, portfolio_k, key
            )
        future: asyncio.Future = loop.create_future()

        def _resolve(record: dict[str, Any]) -> None:
            loop.call_soon_threadsafe(
                lambda: future.done() or future.set_result(record)
            )

        def _fail(exc: BaseException) -> None:
            loop.call_soon_threadsafe(
                lambda: future.done() or future.set_exception(exc)
            )

        pool.apply_async(
            _pool_solve,
            (payload, algorithm, portfolio_k, key),
            callback=_resolve,
            error_callback=_fail,
        )
        return await future

    def _shape(
        self,
        record: dict[str, Any],
        request: dict[str, Any],
        request_id: Any,
        coalesced: bool,
    ) -> dict[str, Any]:
        """One cache/solve record into one per-requester v2 response."""
        if not record.get("ok"):
            response = self._error(request_id, str(record.get("error")))
            response["coalesced"] = coalesced
            return response
        response = dict(record)
        response["format"] = SERVE_FORMAT_V2
        response["id"] = request_id
        response["coalesced"] = coalesced
        if request.get("explain"):
            # explain derives from the instance alone (no solve), so
            # cache hits and coalesced followers still answer it
            response["explain"] = explain_dispatch(
                instance_from_dict(request["instance"]),
                request.get("algorithm") or self.algorithm,
            ).to_dict()
        return response


# ---------------------------------------------------------------------- #
# the TCP server loop
# ---------------------------------------------------------------------- #


def format_stats_line(service: AsyncEngineService) -> str:
    """One human-readable metrics line (the ``--stats-interval`` output)."""
    stats = service.stats
    snap = stats.latency.snapshot()

    def ms(value: Any) -> str:
        return "-" if value is None else f"{value:.1f}ms"

    gauges = service.gauges()
    return (
        f"serve[stats] qps={stats.qps():.1f} requests={stats.requests} "
        f"solved={stats.solved} cached={stats.cached} "
        f"coalesced={stats.coalesced} rejected={stats.rejected} "
        f"errors={stats.errors} p50={ms(snap['p50_ms'])} "
        f"p95={ms(snap['p95_ms'])} p99={ms(snap['p99_ms'])} "
        f"inflight={gauges['inflight']} queued={gauges['queued']} "
        f"connections={stats.connections}"
    )


async def _log_stats_periodically(
    service: AsyncEngineService, interval: float, sink: TextIO | None
) -> None:
    while True:
        await asyncio.sleep(interval)
        print(format_stats_line(service), file=sink or sys.stderr, flush=True)


async def serve_async(
    service: AsyncEngineService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    backlog: int = 128,
    max_requests: int | None = None,
    ready: Callable[[tuple], Any] | None = None,
    stats_interval: float | None = None,
    stats_sink: TextIO | None = None,
) -> int:
    """Serve JSONL requests concurrently over asyncio TCP.

    Many connections are multiplexed on the running event loop; within
    one connection lines are answered in order (send several
    *connections* to exploit concurrency and coalescing).  With
    ``max_requests`` the server shuts down after answering that many
    requests (one-shot smoke tests and benchmarks); ``port=0`` binds an
    ephemeral port, announced through ``ready`` once listening.
    ``stats_interval`` starts a periodic metrics line
    (:func:`format_stats_line`) on ``stats_sink`` (default stderr).
    Returns the number of requests answered.
    """
    stop = asyncio.Event()
    served = {"count": 0}

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        service.stats.connections += 1
        try:
            while not stop.is_set():
                try:
                    raw = await reader.readline()
                except ValueError:
                    # line over LINE_LIMIT: answer once, drop the client
                    # (the rest of its stream has lost line framing)
                    writer.write(
                        (
                            json.dumps(
                                {
                                    "format": SERVE_FORMAT_V2,
                                    "id": None,
                                    "ok": False,
                                    "error": f"request line over {LINE_LIMIT} bytes",
                                }
                            )
                            + "\n"
                        ).encode("utf-8")
                    )
                    await writer.drain()
                    break
                if not raw:
                    break
                # decode permissively: invalid UTF-8 fragments become
                # replacement characters and fail JSON parsing, which the
                # protocol boundary answers as a typed error line
                line = raw.decode("utf-8", errors="replace")
                if not line.strip():
                    continue
                response = await service.handle_line(line)
                writer.write((response + "\n").encode("utf-8"))
                await writer.drain()
                served["count"] += 1
                if max_requests is not None and served["count"] >= max_requests:
                    stop.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-conversation; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    server = await asyncio.start_server(
        on_connection, host, port, backlog=backlog, limit=LINE_LIMIT
    )
    if ready is not None:
        ready(server.sockets[0].getsockname())
    logger_task = None
    if stats_interval is not None and stats_interval > 0:
        logger_task = asyncio.create_task(
            _log_stats_periodically(service, stats_interval, stats_sink)
        )
    try:
        async with server:
            await stop.wait()
    finally:
        if logger_task is not None:
            logger_task.cancel()
            try:
                await logger_task
            except asyncio.CancelledError:
                pass
    return served["count"]
