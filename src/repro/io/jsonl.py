"""JSON-Lines streaming for record-shaped data.

The batch engine (:mod:`repro.runtime`) emits one JSON object per solved
instance; JSONL keeps those streams appendable and greppable, and lets a
consumer aggregate results without loading the whole file.  Records are
written compactly (no indentation) with sorted keys so byte-identical
records imply identical content.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator

__all__ = ["dump_jsonl_line", "append_jsonl", "write_jsonl", "iter_jsonl", "read_jsonl"]


def dump_jsonl_line(record: dict[str, Any]) -> str:
    """One record as a compact, key-sorted JSON line (no trailing newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def append_jsonl(record: dict[str, Any], path: str | Path) -> None:
    """Append one record to ``path`` (created if missing)."""
    with Path(path).open("a", encoding="utf-8") as fh:
        fh.write(dump_jsonl_line(record) + "\n")


def write_jsonl(records: Iterable[dict[str, Any]], path: str | Path) -> Path:
    """Write an iterable of records to ``path``, replacing its contents."""
    p = Path(path)
    with p.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(dump_jsonl_line(record) + "\n")
    return p


def iter_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Lazily yield records from ``path``; blank lines are skipped."""
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def read_jsonl(path: str | Path) -> list[dict[str, Any]]:
    """All records from ``path`` as a list."""
    return list(iter_jsonl(path))
