"""JSON (de)serialisation for the package's core objects.

Schema (``"format": "repro/v1"``):

* graph — ``{"kind": "graph", "n": int, "side": [0/1...],
  "edges": [[u, v], ...]}``
* uniform instance — ``{"kind": "uniform_instance", "graph": ...,
  "p": [int...], "speeds": ["num/den"...]}``
* unrelated instance — ``{"kind": "unrelated_instance", "graph": ...,
  "times": [["num/den" | null ...] ...]}``
* schedule — ``{"kind": "schedule", "instance": ...,
  "assignment": [int...]}``

Format ``"repro/v2"`` is the conflict-graph superset of v1.  Payloads
gain a ``"graph_kind"`` tag on graphs (``"bipartite"`` |
``"complete_multipartite"`` + ``"parts"`` | ``"block"`` + ``"blocks"``)
and an optional ``"eligible"`` field on uniform instances (per job: a
list of allowed machine indices, or ``null`` for "any machine").  A
missing ``graph_kind`` means bipartite, so **every existing v1 file
loads unchanged**, and bipartite objects still *serialise* as
byte-identical v1 — content-hash caches keyed on serialised bytes keep
hitting across the refactor.  Only payloads that need the new
vocabulary (non-bipartite graphs, eligibility masks) are written as v2.

Fractions are stored as strings so exact values survive the round trip;
this is what makes saved hardness-reduction instances (speeds like
``1/(k n)``) reloadable without loss.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Any

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.conflict import (
    BlockGraph,
    CompleteMultipartiteGraph,
    ConflictGraph,
)
from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
    UnrelatedInstance,
)
from repro.scheduling.schedule import Schedule

__all__ = [
    "frac_str",
    "FORMAT_VERSION",
    "FORMAT_VERSION_V2",
    "FORMAT_VERSIONS",
    "graph_to_dict",
    "graph_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_json",
    "load_json",
    "save_instance",
    "load_instance",
]

FORMAT_VERSION = "repro/v1"
FORMAT_VERSION_V2 = "repro/v2"
FORMAT_VERSIONS = (FORMAT_VERSION, FORMAT_VERSION_V2)


def frac_str(value: Fraction | None) -> str | None:
    """Loss-free ``"num/den"`` wire form of a rational (``None`` passes).

    The one formatter every record format shares — schedules here, batch
    results, certificates, and the serve layer must stay byte-compatible
    with one another.
    """
    return None if value is None else f"{value.numerator}/{value.denominator}"


# historical private name (internal callers predate the public export)
_frac_str = frac_str


def _check_header(data: dict[str, Any], kind: str) -> None:
    if not isinstance(data, dict):
        raise InvalidInstanceError(f"expected a JSON object for {kind}")
    fmt = data.get("format", FORMAT_VERSION)
    if fmt not in FORMAT_VERSIONS:
        supported = " or ".join(repr(f) for f in FORMAT_VERSIONS)
        raise InvalidInstanceError(
            f"unsupported format {fmt!r} (this build reads {supported})"
        )
    if data.get("kind") != kind:
        raise InvalidInstanceError(
            f"expected kind {kind!r}, found {data.get('kind')!r}"
        )


def graph_to_dict(graph: ConflictGraph) -> dict[str, Any]:
    """Serialise a conflict graph.

    Bipartite graphs emit the byte-identical v1 payload (witness
    included); other representations emit a v2 payload tagged with
    ``graph_kind``.
    """
    if isinstance(graph, BipartiteGraph):
        return {
            "format": FORMAT_VERSION,
            "kind": "graph",
            "n": graph.n,
            "side": list(graph.side),
            "edges": [[u, v] for u, v in graph.edges()],
        }
    if isinstance(graph, CompleteMultipartiteGraph):
        return {
            "format": FORMAT_VERSION_V2,
            "kind": "graph",
            "graph_kind": "complete_multipartite",
            "n": graph.n,
            "parts": [list(part) for part in graph.parts()],
        }
    if isinstance(graph, BlockGraph):
        return {
            "format": FORMAT_VERSION_V2,
            "kind": "graph",
            "graph_kind": "block",
            "n": graph.n,
            "blocks": [list(blk) for blk in graph.blocks()],
        }
    raise InvalidInstanceError(
        f"cannot serialise conflict-graph type {type(graph).__name__}"
    )


def graph_from_dict(data: dict[str, Any]) -> ConflictGraph:
    """Inverse of :func:`graph_to_dict`.

    A missing ``graph_kind`` means bipartite, so every pre-v2 payload
    loads unchanged.  Malformed payloads raise
    :exc:`~repro.exceptions.InvalidInstanceError`, never a bare
    ``KeyError``/``TypeError``.
    """
    _check_header(data, "graph")
    graph_kind = data.get("graph_kind", "bipartite")
    try:
        if graph_kind == "bipartite":
            return BipartiteGraph(
                int(data["n"]),
                [(int(u), int(v)) for u, v in data["edges"]],
                side=data.get("side"),
            )
        if graph_kind == "complete_multipartite":
            return CompleteMultipartiteGraph(
                int(data["n"]),
                [[int(v) for v in part] for part in data["parts"]],
            )
        if graph_kind == "block":
            return BlockGraph(
                int(data["n"]),
                [[int(v) for v in blk] for blk in data["blocks"]],
            )
    except InvalidInstanceError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise InvalidInstanceError(
            f"malformed {graph_kind!r} graph payload: {exc!r}"
        ) from exc
    known = "bipartite, complete_multipartite, block"
    raise InvalidInstanceError(
        f"unknown graph_kind {graph_kind!r}; known: {known}"
    )


def _eligible_to_lists(
    instance: UniformInstance,
) -> list[list[int] | None]:
    if instance.eligible is None:
        raise InvalidInstanceError(
            "eligibility serialisation requested for an instance with no "
            "eligibility restriction"
        )
    return [
        None if mask is None else sorted(mask) for mask in instance.eligible
    ]


def instance_to_dict(instance: SchedulingInstance) -> dict[str, Any]:
    """Serialise a uniform or unrelated instance.

    Instances expressible in v1 vocabulary (bipartite graph, no
    eligibility masks) serialise byte-identically to pre-v2 builds;
    anything else is tagged ``repro/v2``.
    """
    if isinstance(instance, UniformInstance):
        graph_payload = graph_to_dict(instance.graph)
        v2 = (
            graph_payload["format"] == FORMAT_VERSION_V2
            or instance.has_eligibility
        )
        payload: dict[str, Any] = {
            "format": FORMAT_VERSION_V2 if v2 else FORMAT_VERSION,
            "kind": "uniform_instance",
            "graph": graph_payload,
            "p": list(instance.p),
            "speeds": [_frac_str(s) for s in instance.speeds],
        }
        if instance.has_eligibility:
            payload["eligible"] = _eligible_to_lists(instance)
        return payload
    if isinstance(instance, UnrelatedInstance):
        graph_payload = graph_to_dict(instance.graph)
        return {
            "format": graph_payload["format"],
            "kind": "unrelated_instance",
            "graph": graph_payload,
            "times": [
                [None if t is None else _frac_str(t) for t in row]
                for row in instance.times
            ],
        }
    raise InvalidInstanceError(
        f"cannot serialise instance type {type(instance).__name__}"
    )


def _parse_eligible(
    raw: Any,
) -> list[list[int] | None] | None:
    if raw is None:
        return None
    if not isinstance(raw, list):
        raise InvalidInstanceError(
            "'eligible' must be a list (one entry per job: machine-index "
            "list or null)"
        )
    out: list[list[int] | None] = []
    for entry in raw:
        if entry is None:
            out.append(None)
        else:
            out.append([int(i) for i in entry])
    return out


def instance_from_dict(data: dict[str, Any]) -> SchedulingInstance:
    """Inverse of :func:`instance_to_dict` (accepts either instance kind).

    Malformed or unknown-kind payloads raise
    :exc:`~repro.exceptions.InvalidInstanceError`, never a bare
    ``KeyError``/``TypeError``.
    """
    if not isinstance(data, dict):
        raise InvalidInstanceError("expected a JSON object for an instance")
    kind = data.get("kind")
    try:
        if kind == "uniform_instance":
            _check_header(data, "uniform_instance")
            return UniformInstance(
                graph_from_dict(data["graph"]),
                [int(x) for x in data["p"]],
                [Fraction(s) for s in data["speeds"]],
                eligible=_parse_eligible(data.get("eligible")),
            )
        if kind == "unrelated_instance":
            _check_header(data, "unrelated_instance")
            return UnrelatedInstance(
                graph_from_dict(data["graph"]),
                [
                    [None if t is None else Fraction(t) for t in row]
                    for row in data["times"]
                ],
            )
    except InvalidInstanceError:
        raise
    except (KeyError, TypeError, ValueError, ZeroDivisionError) as exc:
        raise InvalidInstanceError(
            f"malformed {kind!r} instance payload: {exc!r}"
        ) from exc
    raise InvalidInstanceError(f"unknown instance kind {kind!r}")


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialise a schedule together with its instance.

    The outer format tag follows the instance payload, so schedules of
    v1-expressible instances stay byte-identical to pre-v2 builds.
    """
    instance_payload = instance_to_dict(schedule.instance)
    return {
        "format": instance_payload["format"],
        "kind": "schedule",
        "instance": instance_payload,
        "assignment": list(schedule.assignment),
        "makespan": _frac_str(schedule.makespan),
        "feasible": schedule.is_feasible(),
    }


def schedule_from_dict(data: dict[str, Any], check: bool = False) -> Schedule:
    """Inverse of :func:`schedule_to_dict`.

    ``check=False`` by default: serialised schedules may deliberately be
    infeasible (graph-blind baselines); the recorded ``feasible`` flag is
    advisory and recomputed on demand.
    """
    _check_header(data, "schedule")
    instance = instance_from_dict(data["instance"])
    return Schedule(instance, [int(i) for i in data["assignment"]], check=check)


def save_json(data: dict[str, Any], path: str | Path) -> Path:
    """Write a serialised object to ``path`` (pretty-printed, UTF-8)."""
    p = Path(path)
    p.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return p


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a serialised object from ``path``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def save_instance(instance: SchedulingInstance, path: str | Path) -> Path:
    """Convenience: :func:`instance_to_dict` + :func:`save_json`."""
    return save_json(instance_to_dict(instance), path)


def load_instance(path: str | Path) -> SchedulingInstance:
    """Convenience: :func:`load_json` + :func:`instance_from_dict`."""
    return instance_from_dict(load_json(path))
