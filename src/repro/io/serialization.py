"""JSON (de)serialisation for the package's core objects.

Schema (``"format": "repro/v1"``):

* graph — ``{"kind": "graph", "n": int, "side": [0/1...],
  "edges": [[u, v], ...]}``
* uniform instance — ``{"kind": "uniform_instance", "graph": ...,
  "p": [int...], "speeds": ["num/den"...]}``
* unrelated instance — ``{"kind": "unrelated_instance", "graph": ...,
  "times": [["num/den" | null ...] ...]}``
* schedule — ``{"kind": "schedule", "instance": ...,
  "assignment": [int...]}``

Fractions are stored as strings so exact values survive the round trip;
this is what makes saved hardness-reduction instances (speeds like
``1/(k n)``) reloadable without loss.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Any

from repro.exceptions import InvalidInstanceError
from repro.graphs.bipartite import BipartiteGraph
from repro.scheduling.instance import (
    SchedulingInstance,
    UniformInstance,
    UnrelatedInstance,
)
from repro.scheduling.schedule import Schedule

__all__ = [
    "frac_str",
    "FORMAT_VERSION",
    "graph_to_dict",
    "graph_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_json",
    "load_json",
    "save_instance",
    "load_instance",
]

FORMAT_VERSION = "repro/v1"


def frac_str(value: Fraction | None) -> str | None:
    """Loss-free ``"num/den"`` wire form of a rational (``None`` passes).

    The one formatter every record format shares — schedules here, batch
    results, certificates, and the serve layer must stay byte-compatible
    with one another.
    """
    return None if value is None else f"{value.numerator}/{value.denominator}"


# historical private name (internal callers predate the public export)
_frac_str = frac_str


def _check_header(data: dict[str, Any], kind: str) -> None:
    if not isinstance(data, dict):
        raise InvalidInstanceError(f"expected a JSON object for {kind}")
    fmt = data.get("format", FORMAT_VERSION)
    if fmt != FORMAT_VERSION:
        raise InvalidInstanceError(
            f"unsupported format {fmt!r} (this build reads {FORMAT_VERSION})"
        )
    if data.get("kind") != kind:
        raise InvalidInstanceError(
            f"expected kind {kind!r}, found {data.get('kind')!r}"
        )


def graph_to_dict(graph: BipartiteGraph) -> dict[str, Any]:
    """Serialise a :class:`BipartiteGraph` (bipartition witness included)."""
    return {
        "format": FORMAT_VERSION,
        "kind": "graph",
        "n": graph.n,
        "side": list(graph.side),
        "edges": [[u, v] for u, v in graph.edges()],
    }


def graph_from_dict(data: dict[str, Any]) -> BipartiteGraph:
    """Inverse of :func:`graph_to_dict` (validates the witness)."""
    _check_header(data, "graph")
    return BipartiteGraph(
        int(data["n"]),
        [(int(u), int(v)) for u, v in data["edges"]],
        side=data.get("side"),
    )


def instance_to_dict(instance: SchedulingInstance) -> dict[str, Any]:
    """Serialise a uniform or unrelated instance."""
    if isinstance(instance, UniformInstance):
        return {
            "format": FORMAT_VERSION,
            "kind": "uniform_instance",
            "graph": graph_to_dict(instance.graph),
            "p": list(instance.p),
            "speeds": [_frac_str(s) for s in instance.speeds],
        }
    if isinstance(instance, UnrelatedInstance):
        return {
            "format": FORMAT_VERSION,
            "kind": "unrelated_instance",
            "graph": graph_to_dict(instance.graph),
            "times": [
                [None if t is None else _frac_str(t) for t in row]
                for row in instance.times
            ],
        }
    raise InvalidInstanceError(
        f"cannot serialise instance type {type(instance).__name__}"
    )


def instance_from_dict(data: dict[str, Any]) -> SchedulingInstance:
    """Inverse of :func:`instance_to_dict` (accepts either instance kind)."""
    if not isinstance(data, dict):
        raise InvalidInstanceError("expected a JSON object for an instance")
    kind = data.get("kind")
    if kind == "uniform_instance":
        _check_header(data, "uniform_instance")
        return UniformInstance(
            graph_from_dict(data["graph"]),
            [int(x) for x in data["p"]],
            [Fraction(s) for s in data["speeds"]],
        )
    if kind == "unrelated_instance":
        _check_header(data, "unrelated_instance")
        return UnrelatedInstance(
            graph_from_dict(data["graph"]),
            [
                [None if t is None else Fraction(t) for t in row]
                for row in data["times"]
            ],
        )
    raise InvalidInstanceError(f"unknown instance kind {kind!r}")


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """Serialise a schedule together with its instance."""
    return {
        "format": FORMAT_VERSION,
        "kind": "schedule",
        "instance": instance_to_dict(schedule.instance),
        "assignment": list(schedule.assignment),
        "makespan": _frac_str(schedule.makespan),
        "feasible": schedule.is_feasible(),
    }


def schedule_from_dict(data: dict[str, Any], check: bool = False) -> Schedule:
    """Inverse of :func:`schedule_to_dict`.

    ``check=False`` by default: serialised schedules may deliberately be
    infeasible (graph-blind baselines); the recorded ``feasible`` flag is
    advisory and recomputed on demand.
    """
    _check_header(data, "schedule")
    instance = instance_from_dict(data["instance"])
    return Schedule(instance, [int(i) for i in data["assignment"]], check=check)


def save_json(data: dict[str, Any], path: str | Path) -> Path:
    """Write a serialised object to ``path`` (pretty-printed, UTF-8)."""
    p = Path(path)
    p.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")
    return p


def load_json(path: str | Path) -> dict[str, Any]:
    """Read a serialised object from ``path``."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def save_instance(instance: SchedulingInstance, path: str | Path) -> Path:
    """Convenience: :func:`instance_to_dict` + :func:`save_json`."""
    return save_json(instance_to_dict(instance), path)


def load_instance(path: str | Path) -> SchedulingInstance:
    """Convenience: :func:`load_json` + :func:`instance_from_dict`."""
    return instance_from_dict(load_json(path))
