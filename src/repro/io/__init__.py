"""Serialisation of graphs, instances and schedules (JSON).

The on-disk format is versioned and loss-free: rationals (speeds,
unrelated processing times) are stored as ``"num/den"`` strings so a
round trip through JSON preserves exact values.
"""

from repro.io.serialization import (
    FORMAT_VERSION,
    graph_to_dict,
    graph_from_dict,
    instance_to_dict,
    instance_from_dict,
    schedule_to_dict,
    schedule_from_dict,
    save_json,
    load_json,
    load_instance,
    save_instance,
)

__all__ = [
    "FORMAT_VERSION",
    "graph_to_dict",
    "graph_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_json",
    "load_json",
    "load_instance",
    "save_instance",
]
