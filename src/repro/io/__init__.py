"""Serialisation of graphs, instances and schedules (JSON + JSONL).

The on-disk format is versioned and loss-free: rationals (speeds,
unrelated processing times) are stored as ``"num/den"`` strings so a
round trip through JSON preserves exact values.  Record streams (batch
results, caches) use JSON Lines via :mod:`repro.io.jsonl`.
"""

from repro.io.jsonl import (
    append_jsonl,
    dump_jsonl_line,
    iter_jsonl,
    read_jsonl,
    write_jsonl,
)
from repro.io.serialization import (
    FORMAT_VERSION,
    FORMAT_VERSION_V2,
    FORMAT_VERSIONS,
    frac_str,
    graph_to_dict,
    graph_from_dict,
    instance_to_dict,
    instance_from_dict,
    schedule_to_dict,
    schedule_from_dict,
    save_json,
    load_json,
    load_instance,
    save_instance,
)

__all__ = [
    "FORMAT_VERSION",
    "FORMAT_VERSION_V2",
    "FORMAT_VERSIONS",
    "frac_str",
    "graph_to_dict",
    "graph_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
    "save_json",
    "load_json",
    "load_instance",
    "save_instance",
    "append_jsonl",
    "dump_jsonl_line",
    "iter_jsonl",
    "read_jsonl",
    "write_jsonl",
]
