"""Deterministic random-number-generation helpers.

Every stochastic component of the library (graph generators, workload
generators, Monte-Carlo experiment sweeps) accepts either an integer seed or
a ready :class:`numpy.random.Generator`.  Centralising the coercion here
keeps experiment scripts reproducible: the same seed always yields the same
instance stream, independent of call order in unrelated modules.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int`` seed, or an existing
        generator (returned unchanged so callers can thread one generator
        through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    Used by parameter sweeps so that each grid cell gets its own
    statistically independent stream; adding or removing cells does not
    perturb the instances drawn for the remaining cells.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(count)] \
        if hasattr(root.bit_generator, "seed_seq") and root.bit_generator.seed_seq is not None \
        else [np.random.default_rng(root.integers(0, 2**63)) for _ in range(count)]
