"""Exact rational arithmetic helpers.

The paper's correctness arguments compare completion times, machine
capacities and lower bounds exactly; machine speeds such as ``1/(k*n)``
(Theorem 8) make floating point unusable.  Everything that feeds a
theorem-level comparison goes through :class:`fractions.Fraction`.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence

__all__ = [
    "as_fraction",
    "as_fraction_tuple",
    "floor_fraction",
    "ceil_fraction",
    "lcm_of_denominators",
    "rescale_to_integers",
]

Rational = int | Fraction


def as_fraction(value: int | float | str | Fraction) -> Fraction:
    """Convert ``value`` to an exact :class:`Fraction`.

    Floats are converted through their decimal string representation rather
    than their binary expansion, so ``as_fraction(0.1) == Fraction(1, 10)``:
    callers writing literal speeds like ``0.5`` get the rational they meant.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"cannot convert non-finite float {value!r} to Fraction")
        return Fraction(str(value))
    if isinstance(value, str):
        return Fraction(value)
    raise TypeError(f"cannot convert {type(value).__name__} to Fraction")


def as_fraction_tuple(values: Iterable[int | float | str | Fraction]) -> tuple[Fraction, ...]:
    """Vectorised :func:`as_fraction`."""
    return tuple(as_fraction(v) for v in values)


def floor_fraction(value: Fraction | int) -> int:
    """Exact floor of a rational value."""
    if isinstance(value, int):
        return value
    return value.numerator // value.denominator


def ceil_fraction(value: Fraction | int) -> int:
    """Exact ceiling of a rational value."""
    if isinstance(value, int):
        return value
    return -((-value.numerator) // value.denominator)


def lcm_of_denominators(values: Sequence[Fraction | int]) -> int:
    """Least common multiple of the denominators of ``values``.

    Multiplying a set of rationals by this LCM produces integers, which lets
    the DP engines (:mod:`repro.scheduling.dp_unrelated`) run in fast integer
    arithmetic while staying exact.
    """
    lcm = 1
    for v in values:
        if isinstance(v, Fraction):
            lcm = math.lcm(lcm, v.denominator)
    return lcm


def rescale_to_integers(values: Sequence[Fraction | int]) -> tuple[list[int], int]:
    """Return ``([v * scale for v in values], scale)`` with integer entries.

    ``scale`` is the smallest positive integer making every entry integral
    (the LCM of denominators); results divide back exactly.
    """
    scale = lcm_of_denominators(values)
    scaled: list[int] = []
    for v in values:
        f = v if isinstance(v, Fraction) else Fraction(v)
        num = f.numerator * (scale // f.denominator)
        scaled.append(num)
    return scaled, scale
