"""Shared utilities: seeded RNG helpers, exact rational arithmetic helpers,
input validation primitives, and light-weight timing instrumentation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.rationals import (
    as_fraction,
    as_fraction_tuple,
    floor_fraction,
    ceil_fraction,
    lcm_of_denominators,
    rescale_to_integers,
)
from repro.utils.validation import (
    check_positive_int,
    check_positive_ints,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "as_fraction",
    "as_fraction_tuple",
    "floor_fraction",
    "ceil_fraction",
    "lcm_of_denominators",
    "rescale_to_integers",
    "check_positive_int",
    "check_positive_ints",
    "check_probability",
]
