"""Input validation primitives shared across instance constructors."""

from __future__ import annotations

from typing import Iterable

from repro.exceptions import InvalidInstanceError

__all__ = ["check_positive_int", "check_positive_ints", "check_probability"]


def check_positive_int(value: object, name: str) -> int:
    """Validate that ``value`` is a positive ``int`` and return it.

    ``bool`` is rejected despite being an ``int`` subclass — a processing
    requirement of ``True`` is always a caller bug.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidInstanceError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise InvalidInstanceError(f"{name} must be positive, got {value}")
    return value


def check_positive_ints(values: Iterable[object], name: str) -> tuple[int, ...]:
    """Validate a sequence of positive integers (e.g. processing requirements)."""
    out = []
    for idx, v in enumerate(values):
        out.append(check_positive_int(v, f"{name}[{idx}]"))
    return tuple(out)


def check_probability(value: float, name: str = "p") -> float:
    """Validate an edge probability ``0 <= p <= 1``."""
    p = float(value)
    if not (0.0 <= p <= 1.0):
        raise InvalidInstanceError(f"{name} must lie in [0, 1], got {value}")
    return p
