#!/usr/bin/env python
"""Theorem 19 in action: Algorithm 2 across the three p(n) regimes.

Sweeps the per-side size n and the edge-probability regime, measuring the
makespan of Algorithm 2 against the exact capacity lower bound C**max.
Theorem 19 promises a ratio of at most 2 asymptotically almost surely; the
table shows the finite-n picture.

Run:  python examples/random_graph_scaling.py
"""

from fractions import Fraction

import numpy as np

from repro import unit_uniform_instance, random_graph_schedule
from repro.analysis.tables import format_table
from repro.random_graphs.gilbert import gnnp
from repro.random_graphs.regimes import Regime, probability_for_regime
from repro.scheduling.bounds import min_cover_time

SPEEDS = (Fraction(8), Fraction(4), Fraction(2), Fraction(1), Fraction(1))
SAMPLES = 5


def measure(n: int, regime: Regime, rng) -> float:
    ratios = []
    p = probability_for_regime(regime, n)
    for _ in range(SAMPLES):
        graph = gnnp(n, p, seed=rng)
        inst = unit_uniform_instance(graph, SPEEDS)
        schedule = random_graph_schedule(inst)
        lower = min_cover_time(inst.speeds, inst.n)
        ratios.append(float(schedule.makespan / lower))
    return max(ratios)


def main() -> None:
    rng = np.random.default_rng(7)
    rows = []
    for n in (50, 100, 200, 400):
        row = [n]
        for regime in Regime:
            row.append(measure(n, regime, rng))
        rows.append(row)
    print(
        format_table(
            ["n per side", "subcritical", "critical (a=2)", "supercritical"],
            rows,
            title=(
                "Algorithm 2: worst makespan / C**max over "
                f"{SAMPLES} samples (Theorem 19 promises -> <= 2)"
            ),
        )
    )


if __name__ == "__main__":
    main()
