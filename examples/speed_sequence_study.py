#!/usr/bin/env python
"""Section 6 open problem: how do fixed speed sequences affect hardness?

The paper closes by asking for the best possible approximation ratio
for a *given* sequence of machine speeds (for equal speeds the answer
is exactly 2, by [3]).  This study uses the library's probing harness
to gather the empirical side of that question:

* exhaustively enumerate every bipartite conflict graph on 3+3 jobs,
* measure the worst ratio Algorithm 1 attains per speed sequence,
* polish with local search and measure again,
* print the witness instance of the worst case.

Run:  python examples/speed_sequence_study.py
"""

from fractions import Fraction

from repro.analysis.speed_probe import worst_ratio_exhaustive
from repro.analysis.tables import format_table
from repro.core.sqrt_approx import sqrt_approx_schedule
from repro.scheduling.local_search import improve_schedule

F = Fraction

WEIGHTS = [5, 4, 3, 3, 2, 2]  # sum 19 > 16: past the exact base case

SEQUENCES = [
    ("equal 1,1,1", [F(1), F(1), F(1)]),
    ("mild 2,1,1", [F(2), F(1), F(1)]),
    ("steep 4,2,1", [F(4), F(2), F(1)]),
    ("extreme 16,4,1", [F(16), F(4), F(1)]),
]


def alg1(instance):
    return sqrt_approx_schedule(instance, s1_solver="two_approx").schedule


def alg1_polished(instance):
    return improve_schedule(alg1(instance)).schedule


def main() -> None:
    print(f"probing all 2^9 = 512 bipartite graphs on 3+3 jobs, p = {WEIGHTS}\n")
    rows = []
    worst_witness = None
    worst_ratio = F(0)
    for label, speeds in SEQUENCES:
        raw = worst_ratio_exhaustive(speeds, 3, 3, alg1, weights=WEIGHTS)
        polished = worst_ratio_exhaustive(speeds, 3, 3, alg1_polished, weights=WEIGHTS)
        rows.append(
            [label, float(raw.ratio), float(polished.ratio)]
        )
        if raw.ratio > worst_ratio:
            worst_ratio, worst_witness = raw.ratio, raw.witness
    print(
        format_table(
            ["speed sequence", "Alg1 worst ratio", "after polishing"],
            rows,
            title="Empirical worst-case ratios per speed sequence",
        )
    )
    print(
        "\nreading: equal speeds are the hardest regime for Algorithm 1 "
        "(consistent with\nthe paper's remark that [3]'s factor 2 is tight "
        "there); steeper sequences make\nthe capacity schedule S2 more "
        "decisive and the measured worst case drops."
    )
    if worst_witness is not None:
        print(
            f"\nhardest instance found (ratio {float(worst_ratio):.3f}): "
            f"edges {sorted(worst_witness.graph.edges())}"
        )


if __name__ == "__main__":
    main()
