#!/usr/bin/env python
"""Unrelated machines: assigning ward tasks to two specialist teams.

A hospital has two teams with very different skill profiles: the same
task can take one team twice as long as the other, and a few tasks are
outright impossible for one team (no certification).  Some task pairs
must not be handled by the same team — e.g. duplicate-coverage rules
between the day-shift and night-shift halves of the roster.  That is
exactly ``R2|G = bipartite|Cmax``:

* Algorithm 4 gives an instant 2-approximation,
* Algorithm 5 (the FPTAS) gets within any ``1 + eps`` of optimal,
* the exact optimum (small instance) certifies both.

Run:  python examples/hospital_shifts.py
"""

from fractions import Fraction

import numpy as np

from repro import UnrelatedInstance, r2_fptas, r2_two_approx, brute_force_optimal
from repro.analysis.gantt import render_gantt
from repro.graphs.bipartite import BipartiteGraph


def main() -> None:
    rng = np.random.default_rng(7)

    # 7 day-shift tasks and 7 night-shift tasks; conflicts pair up tasks
    # that would double-cover a ward if the same team took both.
    conflicts = BipartiteGraph.from_parts(
        7, 7, [(0, 0), (1, 1), (2, 2), (3, 4), (4, 3), (5, 6), (6, 5), (2, 3)]
    )
    n = conflicts.n

    # Team A is fast on surgical tasks, team B on administrative ones;
    # two tasks are effectively impossible for the "wrong" team (the
    # paper's Algorithms 3-5 need finite times, so "impossible" is a
    # prohibitive 40-hour estimate that no good schedule will pick).
    base = rng.integers(2, 12, size=n)
    team_a = [int(t) for t in base]
    team_b = [int(t * 2) if j < 7 else max(1, int(t) // 2) for j, t in enumerate(base)]
    times = [team_a, team_b]
    times[0][9] = 40   # task 9 needs a certification only team B holds
    times[1][3] = 40   # task 3 likewise for team A

    instance = UnrelatedInstance(conflicts, times)
    print(f"{n} tasks, {conflicts.edge_count} double-coverage conflicts, 2 teams")

    fast = r2_two_approx(instance)
    print(f"\nAlgorithm 4 (O(n), 2-approx):      Cmax = {float(fast.makespan):.1f}h")

    for eps in (Fraction(1), Fraction(1, 4), Fraction(1, 20)):
        tuned = r2_fptas(instance, eps=eps)
        print(
            f"Algorithm 5 (FPTAS, eps = {str(eps):>4}):  "
            f"Cmax = {float(tuned.makespan):.1f}h"
        )

    optimal = brute_force_optimal(instance)
    print(f"exact optimum (brute force):       Cmax = {float(optimal.makespan):.1f}h")

    best = r2_fptas(instance, eps=Fraction(1, 20))
    gap = float(best.makespan / optimal.makespan)
    print(f"\nFPTAS at eps = 1/20 is within {gap:.3f}x of optimal (guarantee: 1.05x)")
    assert best.makespan <= (1 + Fraction(1, 20)) * optimal.makespan

    print("\n" + render_gantt(best, width=56))


if __name__ == "__main__":
    main()
