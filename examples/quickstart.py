#!/usr/bin/env python
"""Quickstart: schedule incompatible jobs on uniform machines.

Builds a small ``Q|G = bipartite|Cmax`` instance, runs the paper's
Algorithm 1 (the sqrt(sum p_j)-approximation), and compares against the
exact optimum and the capacity lower bound.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    BipartiteGraph,
    UniformInstance,
    brute_force_optimal,
    sqrt_approx_schedule,
)


def main() -> None:
    # Ten jobs; edges mark pairs that must not share a machine.  The graph
    # is bipartite: conflicts only occur between the two halves.
    graph = BipartiteGraph.from_parts(
        5,
        5,
        [(0, 0), (0, 1), (1, 1), (2, 2), (3, 3), (3, 4), (4, 4), (1, 2)],
    )
    p = [4, 2, 7, 3, 1, 5, 2, 2, 6, 1]          # processing requirements
    speeds = [Fraction(4), Fraction(2), Fraction(1)]  # three uniform machines

    instance = UniformInstance(graph, p, speeds)
    print(f"instance: {instance.n} jobs, {instance.m} machines, "
          f"sum p = {instance.total_p}, {graph.edge_count} conflicts")

    result = sqrt_approx_schedule(instance)
    schedule = result.schedule
    print(f"\nAlgorithm 1 chose candidate {result.chosen!r}")
    print(f"makespan  : {schedule.makespan} ({float(schedule.makespan):.3f})")
    if result.capacity_bound is not None:
        print(f"C**max    : {result.capacity_bound} "
              f"({float(result.capacity_bound):.3f})  [exact lower bound]")

    for i in range(instance.m):
        jobs = schedule.jobs_on(i)
        load = sum(p[j] for j in jobs)
        done = schedule.completion_times()[i]
        print(f"  machine {i + 1} (speed {speeds[i]}): jobs {jobs} "
              f"load {load} -> finishes at {float(done):.3f}")

    # On an instance this small the true optimum is computable:
    optimum = brute_force_optimal(instance).makespan
    print(f"\nexact optimum: {optimum} ({float(optimum):.3f})")
    print(f"approximation ratio: {float(schedule.makespan / optimum):.3f} "
          f"(guarantee: sqrt(sum p) = {instance.total_p ** 0.5:.3f})")

    assert schedule.is_feasible()


if __name__ == "__main__":
    main()
