#!/usr/bin/env python
"""The paper's motivating scenario: an inoculation campaign.

A population splits into two groups; some cross-group pairs are in
conflict and must not be scheduled at the same facility.  Facilities
process different numbers of patients per day (machine speeds).  The goal
is to finish the campaign as early as possible.

Jobs = people (unit processing), machines = facilities, incompatibility
graph = conflict pairs (bipartite: conflicts only cross groups).

Run:  python examples/vaccination_campaign.py
"""

from fractions import Fraction

import numpy as np

from repro import UniformInstance, sqrt_approx_schedule, random_graph_schedule
from repro.random_graphs.gilbert import gnnp
from repro.scheduling.bounds import min_cover_time


def main() -> None:
    rng = np.random.default_rng(2022)

    group_size = 150          # people per group
    conflict_rate = 2.5       # average conflicts per person (p = rate / n)

    conflicts = gnnp(group_size, conflict_rate / group_size, seed=rng)
    n = conflicts.n
    print(f"population: {n} people in two groups, "
          f"{conflicts.edge_count} conflict pairs")

    # Facilities: one large hospital, two clinics, several pop-up points.
    speeds = [Fraction(60), Fraction(25), Fraction(25), Fraction(10), Fraction(10)]
    instance = UniformInstance(conflicts, [1] * n, speeds)
    print(f"facilities: daily capacities {[int(s) for s in speeds]}")

    # The unit-job random-graph algorithm (Algorithm 2) is the paper's tool
    # for exactly this shape of input.
    plan = random_graph_schedule(instance)
    lower = min_cover_time(instance.speeds, n)
    print(f"\nAlgorithm 2 campaign length: {float(plan.makespan):.2f} days "
          f"(capacity lower bound {float(lower):.2f}; "
          f"ratio {float(plan.makespan / lower):.2f}, a.a.s. <= 2 by Thm 19)")

    for i, s in enumerate(speeds):
        people = plan.jobs_on(i)
        print(f"  facility {i + 1} (capacity {int(s)}/day): "
              f"{len(people)} people, busy {float(plan.completion_times()[i]):.2f} days")

    # Algorithm 1 handles the general weighted case too (e.g. households
    # booked together as one job).  Compare on the same input:
    general = sqrt_approx_schedule(instance, s1_solver="two_approx")
    print(f"\nAlgorithm 1 on the same instance: "
          f"{float(general.schedule.makespan):.2f} days "
          f"(chose {general.chosen!r})")

    best = min(plan.makespan, general.schedule.makespan)
    print(f"\nbest plan finishes in {float(best):.2f} days")
    assert plan.is_feasible() and general.schedule.is_feasible()


if __name__ == "__main__":
    main()
