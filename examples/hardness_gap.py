#!/usr/bin/env python
"""The executable halves of Theorems 8 and 24.

Starting from labelled 1-PrExt seeds (one YES, one NO), this script builds
both hardness reductions and shows the makespan gap that makes them work:

* YES seeds admit cheap schedules (constructed from the coloring
  extension);
* NO seeds force every schedule above the reduction's lower bound —
  verified exactly by branch-and-bound on a small-scale instance.

Run:  python examples/hardness_gap.py
"""

from repro import brute_force_optimal, solve_prext
from repro.graphs.precoloring import claw_no_instance, planted_yes_instance
from repro.hardness import theorem8_reduction, theorem24_reduction


def theorem8_demo() -> None:
    print("=== Theorem 8: 1-PrExt -> Qm | G=bipartite, p_j=1 | Cmax ===\n")

    yes = planted_yes_instance(6, seed=1)
    coloring = solve_prext(yes)
    assert coloring is not None
    q = theorem8_reduction(yes, k=3)
    schedule = q.schedule_from_extension(coloring)
    print(f"YES seed (n={yes.graph.n}) with k=3:")
    print(f"  reduction size n' = {q.instance.n} unit jobs, "
          f"speeds {tuple(map(str, q.instance.speeds[:3]))}")
    print(f"  schedule from the coloring extension: Cmax = {schedule.makespan}")
    print(f"  YES bound {q.yes_makespan_bound} vs NO bound "
          f"{q.no_makespan_lower_bound}  (gap {float(q.gap):.1f}x)\n")

    no = claw_no_instance()
    assert solve_prext(no) is None
    q_no = theorem8_reduction(no, k=1, gadget_sizes=(2, 1, 1))
    opt = brute_force_optimal(q_no.instance).makespan
    print(f"NO seed (claw, n={no.graph.n}) at verification scale:")
    print(f"  exact optimum over all schedules: {opt}")
    print(f"  reduction lower bound: {q_no.no_makespan_lower_bound} "
          f"(holds: {opt >= q_no.no_makespan_lower_bound})\n")


def theorem24_demo() -> None:
    print("=== Theorem 24: 1-PrExt -> R3 | G=bipartite | Cmax ===\n")

    yes = planted_yes_instance(7, seed=2)
    coloring = solve_prext(yes)
    assert coloring is not None
    r = theorem24_reduction(yes, d=100)
    s = r.schedule_from_extension(coloring)
    print(f"YES seed: schedule along the extension: Cmax = {s.makespan} "
          f"(bound {r.yes_makespan_bound})")

    no = claw_no_instance()
    r_no = theorem24_reduction(no, d=100)
    opt = brute_force_optimal(r_no.instance).makespan
    print(f"NO seed: exact optimum {opt} >= d = {r_no.no_makespan_lower_bound} "
          f"(holds: {opt >= r_no.no_makespan_lower_bound})")
    print(f"gap between YES and NO worlds: {float(r_no.gap):.1f}x")


def main() -> None:
    theorem8_demo()
    theorem24_demo()


if __name__ == "__main__":
    main()
