#!/usr/bin/env python
"""Complete bipartite conflicts: exam seating across two cohorts.

Two cohorts sit different exams; *any* cross-cohort pair in the same
room enables answer sharing, so the conflict graph is complete
bipartite: each room (machine) may seat students of one cohort only.
Rooms differ in invigilation throughput (uniform speeds), students are
unit jobs — precisely ``Q|G = complete bipartite, p_j = 1|Cmax``, the
case [20]/[24] solve exactly in polynomial time under unary encoding.

The example also shows the structure-aware dispatcher recognising the
instance and routing it to the exact method on its own, and compares
against Algorithm 1, which only promises a ``sqrt(sum p_j)`` factor.

Run:  python examples/exam_timetabling.py
"""

from fractions import Fraction

from repro import (
    analyze_structure,
    schedule_complete_bipartite_unit,
    solve,
    sqrt_approx_schedule,
    unit_uniform_instance,
)
from repro.analysis.gantt import render_schedule_summary
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import complete_bipartite


def main() -> None:
    cohort_a, cohort_b = 120, 75
    conflicts = complete_bipartite(cohort_a, cohort_b)

    # a handful of students with separate accommodations conflict with
    # no one — isolated vertices the exact algorithm slots into surplus
    isolated = BipartiteGraph(9)
    conflicts = conflicts.disjoint_union(isolated)

    # room throughputs: students processed per hour
    speeds = [Fraction(40), Fraction(30), Fraction(20), Fraction(12), Fraction(6)]
    instance = unit_uniform_instance(conflicts, speeds)

    structure = analyze_structure(instance.graph)
    print("structure:", structure.describe())

    exact = schedule_complete_bipartite_unit(instance)
    print(f"\nexact unary algorithm: Cmax = {float(exact.makespan):.2f} hours")
    print(render_schedule_summary(exact))

    auto = solve(instance)  # the dispatcher should find the same optimum
    assert auto.makespan == exact.makespan
    print("\nauto dispatch reproduces the exact makespan "
          f"({float(auto.makespan):.2f} h)")

    approx = sqrt_approx_schedule(instance, s1_solver="two_approx").schedule
    print(
        f"Algorithm 1 (general-purpose) on the same instance: "
        f"{float(approx.makespan):.2f} h "
        f"({float(approx.makespan / exact.makespan):.2f}x the optimum)"
    )
    assert approx.makespan >= exact.makespan


if __name__ == "__main__":
    main()
