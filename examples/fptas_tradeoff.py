#!/usr/bin/env python
"""Algorithm 5's accuracy/time trade-off on two unrelated machines.

Sweeps eps for the FPTAS (Theorem 22) on a random ``R2|G=bipartite|Cmax``
instance and compares with the linear-time 2-approximation (Algorithm 4,
Theorem 21) and — at this size — the exact optimum.

Run:  python examples/fptas_tradeoff.py
"""

import time
from fractions import Fraction

from repro import r2_fptas, r2_two_approx, solve_r2_dp
from repro.analysis.suites import random_r2_instance
from repro.analysis.tables import format_table
from repro.core.r2_reduction import reduce_r2


def main() -> None:
    inst = random_r2_instance(120, edge_probability=0.08, seed=11)
    red = reduce_r2(inst)
    print(
        f"instance: {inst.n} jobs on 2 unrelated machines, "
        f"{inst.graph.edge_count} conflicts, "
        f"{len(red.components)} components after Algorithm 3\n"
    )

    # exact optimum of the reduced instance (pseudo-polynomial DP)
    rows_dp = red.dummy_matrix()
    rows_dp[0].append(red.private_load_m1)
    rows_dp[1].append(None)
    rows_dp[0].append(None)
    rows_dp[1].append(red.private_load_m2)
    t0 = time.perf_counter()
    opt = solve_r2_dp(rows_dp).makespan
    t_exact = time.perf_counter() - t0
    print(f"exact optimum: {float(opt):.3f} (DP, {t_exact * 1e3:.1f} ms)\n")

    t0 = time.perf_counter()
    s4 = r2_two_approx(inst)
    t4 = time.perf_counter() - t0

    table = [["Alg. 4 (2-approx)", float(s4.makespan), float(s4.makespan / opt), t4 * 1e3]]
    for eps in (1, Fraction(1, 2), Fraction(1, 4), Fraction(1, 10), Fraction(1, 50)):
        t0 = time.perf_counter()
        s = r2_fptas(inst, eps=eps)
        dt = time.perf_counter() - t0
        table.append(
            [f"Alg. 5 eps={eps}", float(s.makespan), float(s.makespan / opt), dt * 1e3]
        )
        assert s.makespan <= (1 + Fraction(eps)) * opt

    print(
        format_table(
            ["algorithm", "makespan", "ratio vs OPT", "time (ms)"],
            table,
            title="Theorem 21/22: quality vs time",
        )
    )


if __name__ == "__main__":
    main()
